"""Scripted congestion-control policies behind the ``external:`` prefix.

An :class:`ExternalPolicy` is the out-of-tree counterpart of a builtin
sender subclass: it receives the same four :class:`~repro.tcp.events.CCEvent`
dispatches (``on_ack`` / ``on_ecn_echo`` / ``on_rto`` /
``on_send_opportunity``) that the builtin strategies implement as
methods, but as a separate object bound to an
:class:`~repro.control.external.ExternalPolicySender` host.  The default
implementations delegate to the DCTCP laws, so a policy only overrides
the decisions it wants to change — exactly the subclassing surface the
builtins enjoy, without touching the registry.

Policies are registered by name and resolved through
``repro.tcp.cc.get_cc("external:<name>")``, which means a policy name
works anywhere a strategy name flows: ``spec_for``, ``ScenarioSpec``
cache keys, the sweep grid, the fuzzer and the arena.

Two policies ship as proof of the adapter:

- ``dctcp-plus-scripted`` re-implements the paper's DCTCP⁺ purely
  through the event protocol.  It is **byte-for-byte identical** to the
  builtin ``dctcp+`` strategy (the golden-equivalence test diffs full
  result payloads), which proves the external surface loses nothing.
- ``deadline-greedy`` is a deliberately simple deadline heuristic: a
  flow that is behind its deadline skips the DCTCP backoff entirely,
  one that is ahead backs off in full — a bang-bang version of D²TCP's
  gamma correction, scored against it in the arena.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Type

from ..core.pacer import SlowTimePacer
from ..core.state_machine import SlowTimeStateMachine
from ..core.states import DctcpPlusState
from ..tcp.cc import EXTERNAL_PREFIX, CongestionControl
from ..tcp.dctcp import DctcpSender
from ..tcp.events import CC_ACK_ECHO, CCEvent
from ..tcp.sender import TcpSender

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .external import ExternalPolicySender


class ExternalPolicy:
    """Base class for scripted policies; defaults are plain DCTCP.

    One instance is created per flow (per sender), so instance attributes
    are per-flow state.  ``bind`` runs after the host sender's
    ``__init__`` — the same program point where builtin subclasses set up
    their per-flow machinery — so stream draws made there land at the
    same :meth:`~repro.sim.engine.Simulator.next_sequence` offsets as the
    builtin they mirror.
    """

    #: Registry key (without the ``external:`` prefix).
    name = "external"
    #: Display label for tables and the arena.
    label = "External"
    #: External policies ride the DCTCP transport, so ECN stays on.
    ecn = True
    #: Whether the slow_time cwnd floor applies (mirrors the registry flag).
    slow_time = False
    #: Whether the policy consumes per-flow deadlines.
    deadline_aware = False
    description = ""

    def bind(self, sender: "ExternalPolicySender") -> None:
        """Attach per-flow state to the freshly constructed sender."""

    # -- the four CC event dispatches ------------------------------------------
    def on_ack(self, sender: "ExternalPolicySender", ev: CCEvent) -> None:
        DctcpSender.on_ack(sender, ev)

    def on_ecn_echo(self, sender: "ExternalPolicySender", ev: CCEvent) -> None:
        pass

    def on_rto(self, sender: "ExternalPolicySender", ev: CCEvent) -> None:
        DctcpSender.on_rto(sender, ev)

    def on_send_opportunity(self, sender: "ExternalPolicySender", ev: CCEvent) -> int:
        return TcpSender.on_send_opportunity(sender, ev)

    def reduction_penalty(self, sender: "ExternalPolicySender") -> float:
        """Backoff factor ``p`` in ``W <- W(1 - p/2)``; DCTCP uses alpha."""
        return sender.alpha


class DctcpPlusScripted(ExternalPolicy):
    """The paper's DCTCP⁺, rebuilt on the external policy surface.

    Mirrors :class:`~repro.core.dctcp_plus.DctcpPlusSender` exactly: the
    state machine draws from the same ``dctcp+/<seq>`` stream at the same
    sequence offset, the pacer is the same :class:`SlowTimePacer`, and the
    machine is fed by the same ``CC_ACK_ECHO``/``CC_RTO`` conditions.
    Every divergence from the builtin is a bug (the equivalence test
    enforces byte identity).
    """

    name = "dctcp-plus-scripted"
    label = "DCTCP+ (scripted)"
    slow_time = True
    description = "builtin DCTCP+ re-expressed as an external policy (byte-identical)"

    def bind(self, sender: "ExternalPolicySender") -> None:
        sim = sender.sim
        rng = sim.stream(f"dctcp+/{sim.next_sequence()}")
        self.machine = SlowTimeStateMachine(sender.plus_config, rng)
        if sender.plus_config.backoff_unit_mode == "srtt":

            def _srtt_unit() -> Optional[int]:
                srtt = sender.rtt.srtt_ns
                return int(srtt) if srtt is not None else None

            self.machine.unit_source = _srtt_unit
        sender.pacer = SlowTimePacer(self.machine)
        self._retrans_pending = False
        hooks = sim.hooks
        if hooks is not None:
            hooks.machine_created(self.machine, sender)

    def on_ecn_echo(self, sender: "ExternalPolicySender", ev: CCEvent) -> None:
        if ev.kind is not CC_ACK_ECHO:
            return
        machine = self.machine
        congested = ev.ece or self._retrans_pending or sender.in_rto_recovery
        if congested:
            if machine.state is not DctcpPlusState.NORMAL or sender._cwnd_at_floor:
                machine.on_congestion_event()
        else:
            machine.on_clean_ack(ev.time_ns)
        self._retrans_pending = False

    def on_rto(self, sender: "ExternalPolicySender", ev: CCEvent) -> None:
        DctcpSender.on_rto(sender, ev)
        self._retrans_pending = True
        if sender._cwnd_at_floor:
            self.machine.on_congestion_event()


class DeadlineGreedy(ExternalPolicy):
    """Bang-bang deadline heuristic over the DCTCP window law.

    Where D²TCP modulates the backoff continuously (``alpha ** d``), this
    policy makes a binary call per window: a flow projected to miss its
    deadline (or already past it) skips the ECN backoff entirely; a flow
    on schedule backs off with full DCTCP alpha.  Deadline-less flows are
    exact DCTCP.  The projection reuses D²TCP's rate estimate
    ``cwnd / srtt`` with the same unseeded-estimator fallback.
    """

    name = "deadline-greedy"
    label = "DeadlineGreedy"
    deadline_aware = True
    description = "all-or-nothing deadline heuristic (greedy bang-bang D2TCP)"

    def reduction_penalty(self, sender: "ExternalPolicySender") -> float:
        deadline = sender.deadline_ns
        if deadline is None:
            return sender.alpha
        remaining = sender.total_bytes - sender.snd_una
        if remaining <= 0:
            return sender.alpha
        time_left = deadline - sender.sim.now
        if time_left <= 0:
            return 0.0  # already late: hold the window, finish ASAP
        srtt = sender.rtt.srtt_ns
        if not srtt:
            srtt = sender.config.seed_rtt_ns or sender.rtt.rto_initial_ns
        completion_ns = remaining * srtt / sender.cwnd
        if completion_ns >= time_left:
            return 0.0  # projected to miss: no voluntary backoff
        return sender.alpha


# -- registry ---------------------------------------------------------------------
_POLICIES: Dict[str, Type[ExternalPolicy]] = {}


def register_policy(cls: Type[ExternalPolicy], *, replace: bool = False) -> Type[ExternalPolicy]:
    """Register a policy class under its ``name``; returns it for chaining."""
    if not replace and cls.name in _POLICIES:
        raise ValueError(f"external policy {cls.name!r} is already registered")
    _POLICIES[cls.name] = cls
    return cls


def policy_names() -> Tuple[str, ...]:
    """All registered policy names (without the ``external:`` prefix)."""
    return tuple(_POLICIES)


def get_policy(name: str) -> Type[ExternalPolicy]:
    """Look up a policy class by bare name."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown external policy {name!r}; choose from {policy_names()}"
        ) from None


register_policy(DctcpPlusScripted)
register_policy(DeadlineGreedy)


def external_cc(
    policy_name: str,
    policy_factory: Optional[Callable[[], ExternalPolicy]] = None,
) -> CongestionControl:
    """Build the :class:`CongestionControl` descriptor for a policy name.

    ``repro.tcp.cc.get_cc`` calls this for ``external:<name>`` lookups;
    the descriptor's factory creates a fresh policy instance per flow, so
    policy instance attributes are per-flow state.  ``policy_factory``
    overrides the registry lookup (the control env injects its bridge
    this way).
    """
    factory = policy_factory if policy_factory is not None else get_policy(policy_name)

    def _build(sim, host, dst, fid, tcp_config, plus_config, on_complete, deadline_ns):
        from .external import ExternalPolicySender

        return ExternalPolicySender(
            sim, host, dst, fid,
            policy=factory(),
            config=tcp_config,
            plus_config=plus_config,
            on_complete=on_complete,
            deadline_ns=deadline_ns,
        )

    template = factory() if policy_factory is not None else _POLICIES[policy_name]
    return CongestionControl(
        name=EXTERNAL_PREFIX + policy_name,
        label=template.label,
        factory=_build,
        ecn=template.ecn,
        slow_time=template.slow_time,
        deadline_aware=template.deadline_aware,
        description=template.description,
    )
