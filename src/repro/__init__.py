"""repro — a packet-level reproduction of DCTCP+ ("Slowing Little Quickens
More: Improving DCTCP for Massive Concurrent Flows", ICPP 2015).

The package layers:

- :mod:`repro.sim`   — discrete-event engine (integer-ns clock, RNG streams)
- :mod:`repro.net`   — packets, links, ECN switches, hosts, the 2-tier tree
- :mod:`repro.tcp`   — TCP New Reno and DCTCP senders, timeout taxonomy
- :mod:`repro.core`  — DCTCP+ (slow_time state machine + pacer) — the paper
- :mod:`repro.workloads` — incast rounds, long flows, benchmark traffic
- :mod:`repro.metrics`   — flow stats, queue sampling, histograms, tables
- :mod:`repro.exec`  — declarative scenario specs, serial/parallel executors,
  on-disk result cache
- :mod:`repro.experiments` — one driver per paper table/figure

Quickstart::

    from repro import Simulator, build_two_tier, IncastConfig, IncastWorkload, spec_for

    sim = Simulator(seed=1)
    tree = build_two_tier(sim)
    workload = IncastWorkload(sim, tree, spec_for("dctcp+"), IncastConfig(n_flows=80))
    workload.run_to_completion()
    print(workload.mean_goodput_bps / 1e6, "Mbps")
"""

from .exec import (
    ParallelExecutor,
    PointResult,
    ResultCache,
    ScenarioSpec,
    SerialExecutor,
    run_scenario,
)
from .core import (
    DctcpPlusConfig,
    DctcpPlusSender,
    DctcpPlusState,
    SlowTimePacer,
    SlowTimeStateMachine,
)
from .metrics import FlowStats, QueueSampler
from .net import (
    Host,
    Link,
    Packet,
    Switch,
    TopologyParams,
    TwoTierTree,
    build_dumbbell,
    build_two_tier,
)
from .sim import Simulator
from .tcp import DctcpSender, TcpConfig, TcpReceiver, TcpSender, TimeoutKind
from .workloads import (
    BackgroundConfig,
    BackgroundTraffic,
    BenchmarkConfig,
    BenchmarkWorkload,
    IncastConfig,
    IncastWorkload,
    ProtocolSpec,
    spec_for,
)

__version__ = "1.1.0"

__all__ = [
    "Simulator",
    "Host",
    "Link",
    "Packet",
    "Switch",
    "TopologyParams",
    "TwoTierTree",
    "build_two_tier",
    "build_dumbbell",
    "TcpConfig",
    "TcpSender",
    "TcpReceiver",
    "DctcpSender",
    "TimeoutKind",
    "DctcpPlusConfig",
    "DctcpPlusSender",
    "DctcpPlusState",
    "SlowTimePacer",
    "SlowTimeStateMachine",
    "IncastConfig",
    "IncastWorkload",
    "BackgroundConfig",
    "BackgroundTraffic",
    "BenchmarkConfig",
    "BenchmarkWorkload",
    "ProtocolSpec",
    "spec_for",
    "FlowStats",
    "QueueSampler",
    "ScenarioSpec",
    "PointResult",
    "run_scenario",
    "SerialExecutor",
    "ParallelExecutor",
    "ResultCache",
    "__version__",
]
