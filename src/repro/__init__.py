"""repro — a packet-level reproduction of DCTCP+ ("Slowing Little Quickens
More: Improving DCTCP for Massive Concurrent Flows", ICPP 2015).

The package layers:

- :mod:`repro.sim`   — discrete-event engine (integer-ns clock, RNG streams)
- :mod:`repro.net`   — packets, links, ECN switches, hosts, the 2-tier tree
- :mod:`repro.tcp`   — TCP New Reno and DCTCP senders, timeout taxonomy
- :mod:`repro.core`  — DCTCP+ (slow_time state machine + pacer) — the paper
- :mod:`repro.workloads` — incast rounds, long flows, benchmark traffic
- :mod:`repro.metrics`   — flow stats, queue sampling, histograms, tables
- :mod:`repro.exec`  — declarative scenario specs, serial/parallel executors,
  on-disk result cache
- :mod:`repro.sweep` — million-point sweep service: declarative grid/random
  sweeps, content-addressed SQLite result store, resumable sharded
  orchestration (``python -m repro sweep``)
- :mod:`repro.telemetry` — typed event tracing, collectors, exporters,
  engine profiling (``python -m repro trace``)
- :mod:`repro.control` — gym-style :class:`ControlEnv` (step/observe/act
  over a live scenario) and external scripted CC policies riding the
  typed :class:`CCEvent` protocol (``cc="external:<policy>"``)
- :mod:`repro.experiments` — one driver per paper table/figure

:mod:`repro.config` gathers the protocol configuration surfaces
(:class:`TcpConfig`, :class:`DctcpPlusConfig`, :class:`ProtocolSpec`)
into one documented namespace; the classes are the same objects as the
originals, so existing import paths keep working.

Quickstart::

    from repro import Simulator, build_two_tier, IncastConfig, IncastWorkload, spec_for

    sim = Simulator(seed=1)
    tree = build_two_tier(sim)
    workload = IncastWorkload(sim, tree, spec_for("dctcp+"), IncastConfig(n_flows=80))
    workload.run_to_completion()
    print(workload.mean_goodput_bps / 1e6, "Mbps")

Tracing a declarative scenario::

    from repro import ScenarioSpec, run_scenario

    spec = ScenarioSpec.create("dctcp", n_flows=128, rounds=2, seed=1, trace=True)
    result = run_scenario(spec)
    print(len(result.trace_events), "trace records")
"""

from .exec import (
    ParallelExecutor,
    PointResult,
    ResultCache,
    ScenarioSpec,
    SerialExecutor,
    run_scenario,
)
from .core import (
    DctcpPlusConfig,
    DctcpPlusSender,
    DctcpPlusState,
    SlowTimePacer,
    SlowTimeStateMachine,
)
from .metrics import CwndTracker, FlowStats, FlowTracer, QueueSampler
from .net import (
    DumbbellNetwork,
    FatTreeNetwork,
    Host,
    Link,
    Packet,
    Switch,
    TopologyParams,
    TwoTierTree,
    WiringError,
    build_dumbbell,
    build_fat_tree,
    build_star,
    build_two_tier,
    check_wiring,
    topology_builder,
    topology_names,
)
from .control import ControlEnv, ExternalPolicy
from .sim import Simulator
from .sweep import SweepProgress, SweepSpec, SweepStore, run_sweep
from .tcp import DctcpSender, TcpConfig, TcpReceiver, TcpSender, TimeoutKind
from .tcp.cc import CongestionControl, cc_labels, cc_names, get_cc, register
from .tcp.events import CCEvent
from .telemetry import (
    Collector,
    EngineProfiler,
    PeriodicCollector,
    Tracer,
    TraceRecord,
)
from .workloads import (
    BackgroundConfig,
    BackgroundTraffic,
    BenchmarkConfig,
    BenchmarkWorkload,
    ClosedLoopWorkload,
    HttpConfig,
    HttpWorkload,
    IncastConfig,
    IncastWorkload,
    ProtocolSpec,
    SwarmConfig,
    SwarmWorkload,
    spec_for,
)
from . import config
from .experiments.common import run_incast_batch

__version__ = "1.4.0"

__all__ = [
    "Simulator",
    "Host",
    "Link",
    "Packet",
    "Switch",
    "TopologyParams",
    "TwoTierTree",
    "DumbbellNetwork",
    "FatTreeNetwork",
    "build_two_tier",
    "build_dumbbell",
    "build_star",
    "build_fat_tree",
    "check_wiring",
    "WiringError",
    "topology_builder",
    "topology_names",
    "TcpConfig",
    "TcpSender",
    "TcpReceiver",
    "DctcpSender",
    "TimeoutKind",
    "CongestionControl",
    "register",
    "get_cc",
    "cc_names",
    "cc_labels",
    "CCEvent",
    "ControlEnv",
    "ExternalPolicy",
    "DctcpPlusConfig",
    "DctcpPlusSender",
    "DctcpPlusState",
    "SlowTimePacer",
    "SlowTimeStateMachine",
    "IncastConfig",
    "IncastWorkload",
    "ClosedLoopWorkload",
    "HttpConfig",
    "HttpWorkload",
    "SwarmConfig",
    "SwarmWorkload",
    "BackgroundConfig",
    "BackgroundTraffic",
    "BenchmarkConfig",
    "BenchmarkWorkload",
    "ProtocolSpec",
    "spec_for",
    "FlowStats",
    "FlowTracer",
    "CwndTracker",
    "QueueSampler",
    "ScenarioSpec",
    "PointResult",
    "run_scenario",
    "run_incast_batch",
    "SerialExecutor",
    "ParallelExecutor",
    "ResultCache",
    "SweepSpec",
    "SweepStore",
    "SweepProgress",
    "run_sweep",
    "Tracer",
    "TraceRecord",
    "Collector",
    "PeriodicCollector",
    "EngineProfiler",
    "config",
    "__version__",
]
