"""Observation assembly for the control environment.

:class:`~repro.control.env.ControlEnv` pauses the simulation at per-flow
window boundaries and hands the acting agent an :class:`Observation` — a
flat snapshot of the controlled flow's transport state plus the
bottleneck queue's recent behaviour.  This module builds those snapshots
from the same zero/low-cost channels the rest of the telemetry layer
uses:

- transport state is read straight off the sender (ledger-backed
  attributes: cwnd, snd_una, RTT estimate, DCTCP alpha);
- the per-window marked fraction comes from the CC event stream (the
  bridge policy accumulates ``newly_acked``/``ece`` per window, exactly
  the bytes DCTCP itself counts);
- the queue high-water mark rides the :class:`~repro.net.queues.DropTailQueue`
  ``on_enqueue`` channel, which both port send paths already test for
  ``None`` per packet — chaining a closure there costs nothing when no
  assembler is attached;
- timeout taxonomy counts (FLoss-TO / LAck-TO) come from the flow's
  :class:`~repro.metrics.flowstats.FlowStats` record.

The assembler schedules no events and draws no randomness, so attaching
it never perturbs a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..tcp.timeouts import TimeoutKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.queues import DropTailQueue
    from ..tcp.sender import TcpSender


@dataclass
class Observation:
    """One step's view of a controlled flow (gym-style observation)."""

    #: Simulated time of the snapshot (ns).
    time_ns: int
    #: Ordinal of the controlled flow within the workload (construction order).
    flow: int
    #: Monotonic step counter for this flow (0 = first window boundary).
    step: int
    #: Congestion window (bytes) after this window's CC reaction.
    cwnd_bytes: float
    #: Slow-start threshold (bytes).
    ssthresh_bytes: float
    #: Unacknowledged bytes in flight at the snapshot.
    inflight_bytes: int
    #: Smoothed RTT estimate (ns); None before the first sample.
    srtt_ns: Optional[int]
    #: DCTCP marked-byte EWMA (the sender's alpha).
    alpha: float
    #: Bytes newly ACKed during the window just closed.
    acked_bytes: int
    #: Fraction of those bytes whose ACKs carried ECN-Echo.
    marked_fraction: float
    #: Bottleneck queue high-water mark (bytes) since the previous
    #: observation; 0 when no queue is being watched.
    queue_highwater_bytes: int
    #: Cumulative full-window-loss timeouts (FLoss-TO) for this flow.
    timeouts_floss: int
    #: Cumulative last-ACK-loss timeouts (LAck-TO) for this flow.
    timeouts_lack: int
    #: True when the workload has finished; no further steps will follow.
    done: bool = False


class ObservationAssembler:
    """Builds :class:`Observation` records for one controlled flow.

    One assembler per controlled flow; the environment shares a single
    watched queue across assemblers (each keeps its own high-water window
    so observations for different flows don't steal each other's peaks).
    """

    __slots__ = ("_queue", "_highwater", "_step")

    def __init__(self) -> None:
        self._queue: Optional["DropTailQueue"] = None
        self._highwater = 0
        self._step = 0

    def watch_queue(self, queue: "DropTailQueue") -> None:
        """Track ``queue``'s occupancy peaks via its enqueue channel.

        Chains any previously installed ``on_enqueue`` observer, mirroring
        the telemetry hook registry's convention.
        """
        self._queue = queue
        prev = queue.on_enqueue

        def _on_enqueue(handle: int, _q=queue, _prev=prev) -> None:
            occupancy = _q.occupancy_bytes
            if occupancy > self._highwater:
                self._highwater = occupancy
            if _prev is not None:
                _prev(handle)

        queue.on_enqueue = _on_enqueue
        self._highwater = queue.occupancy_bytes

    def snapshot(
        self,
        sender: "TcpSender",
        flow: int,
        acked_bytes: int,
        marked_bytes: int,
        done: bool = False,
    ) -> Observation:
        """Close the current window and emit its observation."""
        stats = sender.stats
        srtt = sender.rtt.srtt_ns
        obs = Observation(
            time_ns=sender.sim.now,
            flow=flow,
            step=self._step,
            cwnd_bytes=sender.cwnd,
            ssthresh_bytes=sender.ssthresh,
            inflight_bytes=sender.bytes_in_flight,
            srtt_ns=int(srtt) if srtt is not None else None,
            alpha=getattr(sender, "alpha", 0.0),
            acked_bytes=acked_bytes,
            marked_fraction=(marked_bytes / acked_bytes) if acked_bytes > 0 else 0.0,
            queue_highwater_bytes=self._highwater,
            timeouts_floss=stats.timeout_count_of(TimeoutKind.FLOSS),
            timeouts_lack=stats.timeout_count_of(TimeoutKind.LACK),
            done=done,
        )
        self._step += 1
        queue = self._queue
        self._highwater = queue.occupancy_bytes if queue is not None else 0
        return obs
