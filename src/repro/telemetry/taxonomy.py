"""Timeout-taxonomy and queue-occupancy analysis over telemetry.

This is the analysis half of the telemetry subsystem: pure functions that
turn trace records (or the legacy per-flow counters) into the numbers the
paper reports — the FLoss-TO / LAck-TO split of Table I and the queue
occupancy distribution of Fig. 9.  ``python -m repro trace`` prints them;
:mod:`repro.experiments.table1_timeout_taxonomy` is a thin consumer of
:func:`stack_state_row`.

Imports from the rest of the package are deliberately function-local so
the telemetry core stays import-light (and cycle-free: metrics imports
telemetry's collector base).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence

from .tracer import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..metrics.flowstats import FlowStats


def timeout_taxonomy(records: Iterable[TraceRecord]) -> Dict[str, int]:
    """Count RTOs by kind name ("FLOSS"/"LACK") from a trace stream.

    The classification travels in the ``detail`` column of ``rto`` records
    (written by the sender at the moment the timer expired from the same
    ``classify_timeout`` call that feeds the per-flow stats), so trace- and
    stats-derived taxonomies agree by construction.
    """
    from ..tcp.timeouts import TimeoutKind

    counts = {kind.name: 0 for kind in TimeoutKind}
    for record in records:
        if record.kind == "rto":
            counts[TimeoutKind.from_label(record.detail).name] += 1
    return counts


def timeout_taxonomy_from_stats(stats: Iterable["FlowStats"]) -> Dict[str, int]:
    """The same counts derived from per-flow statistics (legacy channel)."""
    from ..metrics.cwnd_tracker import timeout_fraction_by_kind

    return timeout_fraction_by_kind(stats)


def stack_state_row(
    dctcp_stats: Iterable["FlowStats"], tcp_stats: Iterable["FlowStats"]
) -> List[str]:
    """One formatted Table-I row: incapable share, timeout shares, TO split."""
    from ..metrics.cwnd_tracker import stack_state_shares
    from ..metrics.report import format_percent

    d = stack_state_shares(dctcp_stats)
    t = stack_state_shares(tcp_stats)
    return [
        format_percent(d.cwnd2_ece1_share),
        format_percent(d.timeout_share),
        format_percent(t.timeout_share),
        format_percent(d.floss_share),
        format_percent(d.lack_share),
    ]


def queue_occupancy_summary(samples_bytes: Sequence[int]) -> Dict[str, float]:
    """Mean / percentiles / max of sampled queue occupancy, in bytes."""
    import numpy as np

    if not len(samples_bytes):
        return {"samples": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    arr = np.asarray(samples_bytes, dtype=np.float64)
    return {
        "samples": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }
