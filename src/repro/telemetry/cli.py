"""``python -m repro trace`` — run one scenario with telemetry enabled.

Runs a single incast point with the :class:`~repro.telemetry.tracer.Tracer`
attached and prints the trace-derived report: the timeout taxonomy
(FLoss-TO / LAck-TO, cross-checked against the per-flow counters — the
two channels must agree because both derive from the same
``classify_timeout`` call), the queue-occupancy distribution, per-queue
high-watermarks and the record counts per event kind.

The default point (DCTCP, N=128, 2 rounds) is the Table-I regime where
the timeout taxonomy is interesting; ``--quick`` shrinks it to an
8-flow/2-round point for CI smoke.  ``--jsonl``/``--csv`` export the raw
records; ``--profile`` additionally runs the scenario under the
:class:`~repro.telemetry.profiler.EngineProfiler` and prints the
dispatch-loop breakdown.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..cli import add_common_arguments, apply_common_arguments
from .taxonomy import queue_occupancy_summary, timeout_taxonomy, timeout_taxonomy_from_stats


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run one incast scenario with telemetry and print the trace report.",
    )
    parser.add_argument(
        "--protocol",
        default="dctcp",
        help="protocol stack for the traced point (default: dctcp)",
    )
    parser.add_argument(
        "--n-flows",
        type=int,
        default=128,
        help="incast fan-in (default: 128, the Table-I regime)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=2,
        help="incast rounds (default: 2)",
    )
    add_common_arguments(
        parser,
        seed=True,
        quick=True,
        quick_help="trace a small 8-flow point instead (CI smoke)",
    )
    parser.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the raw trace records as JSON Lines",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help="write the raw trace records as CSV",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also profile the dispatch loop and print the per-kind breakdown",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    apply_common_arguments(args)

    # Imports deferred so ``python -m repro trace --help`` stays instant.
    from ..exec.context import make_executor
    from ..exec.scenario import ScenarioSpec, run_scenario
    from .profiler import EngineProfiler
    from .tracer import Tracer

    n_flows = 8 if args.quick else args.n_flows
    rounds = 2 if args.quick else args.rounds
    spec = ScenarioSpec.create(
        protocol=args.protocol,
        n_flows=n_flows,
        rounds=rounds,
        seed=args.seed,
        sample_queue=True,
        trace=True,
    )

    profiler = EngineProfiler() if args.profile else None
    if profiler is not None:
        # The profiled dispatch loop is serial-only by nature (it times the
        # local engine), so bypass the executor when profiling.
        result = run_scenario(spec, profiler=profiler)
    else:
        result = make_executor().map([spec])[0]

    records = result.trace_events
    print(
        f"traced {spec.protocol} incast: N={spec.n_flows}, rounds={spec.rounds}, "
        f"seed={spec.seed} — {result.events_processed} events, "
        f"{len(records)} trace records"
    )

    tracer = Tracer()
    tracer.records.extend(records)
    counts = tracer.counts_by_kind()
    print("\nrecords by kind:")
    for kind, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        print(f"  {kind:<12} {count}")

    from_trace = timeout_taxonomy(records)
    from_stats = timeout_taxonomy_from_stats(result.flow_stats)
    print("\ntimeout taxonomy (from trace records):")
    total_rtos = sum(from_trace.values())
    for name, count in from_trace.items():
        share = count / total_rtos if total_rtos else 0.0
        print(f"  {name:<8} {count:>6}  ({share:.1%} of timeouts)")
    if from_trace == from_stats:
        print("  cross-check vs per-flow stats: agree")
    else:
        print(f"  cross-check vs per-flow stats: MISMATCH {from_stats}")
        return 1

    occ = queue_occupancy_summary(result.queue_samples_bytes)
    print("\nbottleneck queue occupancy (bytes):")
    for key in ("samples", "mean", "p50", "p95", "p99", "max"):
        print(f"  {key:<8} {occ[key]:,.0f}")

    hwm = tracer.high_watermarks()
    if hwm:
        print("\nqueue high-watermarks (bytes):")
        for name, peak in sorted(hwm.items(), key=lambda kv: -kv[1])[:8]:
            print(f"  {name:<24} {peak:,}")

    if args.jsonl:
        from .export import write_jsonl

        write_jsonl(args.jsonl, records)
        print(f"\nwrote trace: {args.jsonl} ({len(records)} records)")
    if args.csv:
        from .export import write_csv

        write_csv(args.csv, tracer)
        print(f"wrote summary: {args.csv}")

    if profiler is not None:
        print("\nengine profile:")
        print(profiler.report())
    return 0
