"""The Collector protocol: one lifecycle + export surface for every probe.

A collector is anything that accumulates measurements over a run and can
dump them as tabular rows: ``attach()`` begins collection, ``detach()``
ends it, ``schema()`` names the columns and ``rows()`` yields the data.
:class:`~repro.metrics.timeline.FlowTracer`,
:class:`~repro.metrics.queue_sampler.QueueSampler` and
:class:`~repro.metrics.cwnd_tracker.CwndTracker` all implement it, so the
exporters in :mod:`repro.telemetry.export` (and anything else that walks
collectors) need exactly one code path.

:class:`PeriodicCollector` additionally owns the repeating-simulator-event
machinery that the samplers used to duplicate — including the subtle
clear-handle-on-entry rule: the event that invoked ``_tick`` has fired and
its handle is dead, so the handle is dropped *before* any early return;
otherwise a later ``detach()`` could cancel whatever unrelated event the
engine's freelist recycled the carcass into.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..sim.engine import Simulator


class Collector:
    """Base protocol: lifecycle no-ops plus schema-driven CSV rendering."""

    def attach(self) -> None:
        """Begin collecting (no-op for pure aggregation collectors)."""

    def detach(self) -> None:
        """Stop collecting (no-op for pure aggregation collectors)."""

    def schema(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def rows(self) -> List[Sequence]:
        raise NotImplementedError

    def to_csv(self) -> str:
        """Render ``schema`` + ``rows`` as CSV text."""
        lines = [",".join(self.schema())]
        for row in self.rows():
            lines.append(",".join(_csv_cell(cell) for cell in row))
        return "\n".join(lines)


def _csv_cell(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


class PeriodicCollector(Collector):
    """A collector driven by a repeating simulator event.

    Subclasses implement :meth:`_sample` (record one observation at
    ``sim.now``) and may override :meth:`_exhausted` to stop early (e.g. a
    sample-count bound).  The first sample lands at the current simulation
    time, then every ``interval_ns`` after it.
    """

    def __init__(self, sim: "Simulator", interval_ns: int):
        if interval_ns <= 0:
            raise ValueError(f"sample interval must be positive, got {interval_ns}")
        self.sim = sim
        self.interval_ns = interval_ns
        self._event = None
        self.running = False

    # -- lifecycle ---------------------------------------------------------------
    def attach(self) -> None:
        if self.running:
            return
        self.running = True
        self._event = self.sim.schedule(0, self._tick)

    def detach(self) -> None:
        self.running = False
        self.sim.cancel(self._event)
        self._event = None

    # Historical spelling, kept as the primary user-facing API.
    def start(self) -> None:
        self.attach()

    def stop(self) -> None:
        self.detach()

    # -- sampling ----------------------------------------------------------------
    def _tick(self) -> None:
        # The event that invoked us has fired: its handle is dead, and the
        # engine will recycle the object.  Clear it *before* any early
        # return so a later detach() can never cancel whatever unrelated
        # event ends up reusing the carcass.
        self._event = None
        if not self.running:
            return
        self._sample()
        if self._exhausted():
            self.running = False
            return
        self._event = self.sim.schedule(self.interval_ns, self._tick)

    def _sample(self) -> None:
        raise NotImplementedError

    def _exhausted(self) -> bool:
        """Override to stop sampling after a bound (checked post-sample)."""
        return False
