"""Opt-in engine profiling: dispatch-loop time broken down by event kind.

An :class:`EngineProfiler` handed to the :class:`~repro.sim.engine.Simulator`
switches the engine onto a timing dispatch loop that attributes wall time
to each callback kind (keyed by ``__qualname__``, e.g.
``OutputPort._finish_tx``).  Semantics are identical to the plain loop —
same ordering, same event counts — only slower, so profiled runs are for
finding where the engine spends its time, never for gating results.

The profiled loop also reports the engine's same-timestamp *batches*: for
every dispatched event, the size of the batch it ran in is credited to
its kind, so ``mean_batch`` shows which event types actually tie (fan-in
arrivals and ACK bursts batch heavily; lone timers don't) and therefore
which benefit from the batched dispatch loop.

``repro.bench --profile`` and ``python -m repro trace --profile`` report
through this; the numbers export via the shared Collector surface
(:meth:`schema` / :meth:`rows` / :meth:`to_csv`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .collector import Collector


class EngineProfiler(Collector):
    """Accumulates per-callback-kind dispatch counts, seconds and batch sizes."""

    __slots__ = ("counts", "times_s", "batch_events", "batches", "events", "wall_s")

    def __init__(self):
        self.counts: Dict[str, int] = {}
        self.times_s: Dict[str, float] = {}
        #: per kind: sum over its events of the size of the batch each ran in
        self.batch_events: Dict[str, int] = {}
        #: number of same-timestamp batches dispatched
        self.batches = 0
        self.events = 0
        self.wall_s = 0.0

    # -- engine feed -------------------------------------------------------------
    def record_run(self, events: int, wall_s: float) -> None:
        """Called by the profiled dispatch loop after each run() returns."""
        self.events += events
        self.wall_s += wall_s

    def record_batch(self, kinds: List[str]) -> None:
        """Called once per same-timestamp batch with the kinds dispatched in it.

        Credits the batch size to every member event's kind, so a kind's
        ``mean_batch`` answers "when this event fires, how many events
        share its timestamp?" — the quantity the batched loop amortizes.
        """
        size = len(kinds)
        if size == 0:
            return
        self.batches += 1
        batch_events = self.batch_events
        for kind in kinds:
            batch_events[kind] = batch_events.get(kind, 0) + size

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Events per same-timestamp batch, across the whole run."""
        return self.events / self.batches if self.batches else 0.0

    # -- Collector surface -------------------------------------------------------
    def schema(self) -> Tuple[str, ...]:
        return ("kind", "events", "total_s", "mean_us", "share", "mean_batch")

    def rows(self) -> List[Tuple[str, int, float, float, float, float]]:
        """One row per callback kind, heaviest total time first."""
        total = sum(self.times_s.values()) or 1.0
        batch_events = self.batch_events
        out = []
        for kind, seconds in sorted(self.times_s.items(), key=lambda kv: -kv[1]):
            count = self.counts[kind]
            out.append(
                (
                    kind,
                    count,
                    seconds,
                    seconds / count * 1e6 if count else 0.0,
                    seconds / total,
                    batch_events.get(kind, 0) / count if count else 0.0,
                )
            )
        return out

    def report(self) -> str:
        """Human-readable table (the --profile output)."""
        lines = [
            f"{self.events} events in {self.wall_s:.3f}s "
            f"({self.events_per_sec:,.0f} events/s), "
            f"{self.batches} batches (mean {self.mean_batch_size:.2f} events)",
            f"{'kind':<40} {'events':>10} {'total_s':>9} {'mean_us':>8} {'share':>6} {'mean_batch':>10}",
        ]
        for kind, count, seconds, mean_us, share, mean_batch in self.rows():
            lines.append(
                f"{kind:<40} {count:>10} {seconds:>9.3f} {mean_us:>8.2f} "
                f"{share:>6.1%} {mean_batch:>10.2f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EngineProfiler({self.events} events, {self.wall_s:.3f}s)"
