"""repro.telemetry — the unified tracing/metrics subsystem.

One observability layer shared by experiments, bench and fuzz runs:

- :class:`Tracer` + :class:`TraceRecord` — typed, append-only event
  records (drops, marks, retransmits, RTOs with FLoss/LAck classification,
  slow_time machine activity, queue high-watermarks) fed by cheap engine
  hook points; strictly zero-cost when tracing is off.
- :class:`HookRegistry` — the single fan-out point those hook points talk
  to; the invariant checker and the tracer are both plain subscribers.
- :class:`Collector` / :class:`PeriodicCollector` — the lifecycle + export
  protocol every probe (FlowTracer, QueueSampler, CwndTracker) shares.
- :class:`EngineProfiler` — opt-in dispatch-loop profiling by event kind.
- :mod:`repro.telemetry.export` — JSONL trace streams and CSV summaries.
- :mod:`repro.telemetry.taxonomy` — timeout-taxonomy / queue-occupancy
  analysis (``python -m repro trace`` reports through it).
"""

from .collector import Collector, PeriodicCollector
from .export import read_jsonl, records_from_jsonl, records_to_jsonl, write_csv, write_jsonl
from .hooks import HookRegistry
from .profiler import EngineProfiler
from .taxonomy import (
    queue_occupancy_summary,
    stack_state_row,
    timeout_taxonomy,
    timeout_taxonomy_from_stats,
)
from .tracer import EVENT_KINDS, Tracer, TraceRecord

__all__ = [
    "Tracer",
    "TraceRecord",
    "EVENT_KINDS",
    "HookRegistry",
    "Collector",
    "PeriodicCollector",
    "EngineProfiler",
    "records_to_jsonl",
    "records_from_jsonl",
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "timeout_taxonomy",
    "timeout_taxonomy_from_stats",
    "stack_state_row",
    "queue_occupancy_summary",
]
