"""Exporters: JSONL trace streams and CSV summaries.

Two formats, one rule each:

- **JSONL** — one :class:`~repro.telemetry.tracer.TraceRecord` per line as
  a JSON object with stable key order (``time_ns, kind, subject, value,
  detail``).  Line-oriented so traces stream, diff, and grep well; the
  golden-trace test pins the exact bytes for a small scenario.
- **CSV** — any :class:`~repro.telemetry.collector.Collector` (something
  with ``schema()`` + ``rows()``) renders via its shared ``to_csv``.

Round-trip: :func:`read_jsonl` parses what :func:`write_jsonl` wrote back
into records, so cached traces can be re-analyzed without re-simulating.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Union

from .collector import Collector
from .tracer import TraceRecord


def records_to_jsonl(records: Iterable[TraceRecord]) -> str:
    """Serialize records as JSON Lines text (trailing newline included)."""
    lines = []
    for r in records:
        lines.append(
            json.dumps(
                {
                    "time_ns": r.time_ns,
                    "kind": r.kind,
                    "subject": r.subject,
                    "value": r.value,
                    "detail": r.detail,
                },
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def records_from_jsonl(text: str) -> List[TraceRecord]:
    """Parse JSON Lines text back into records."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        records.append(
            TraceRecord(obj["time_ns"], obj["kind"], obj["subject"], obj["value"], obj["detail"])
        )
    return records


def write_jsonl(path: Union[str, os.PathLike], records: Iterable[TraceRecord]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(records_to_jsonl(records))


def read_jsonl(path: Union[str, os.PathLike]) -> List[TraceRecord]:
    with open(path, "r", encoding="utf-8") as fh:
        return records_from_jsonl(fh.read())


def write_csv(path: Union[str, os.PathLike], collector: Collector) -> None:
    """Write any Collector's schema + rows as a CSV file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(collector.to_csv())
        fh.write("\n")
