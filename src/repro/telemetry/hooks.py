"""The shared hook registry: one fan-out point for every observer.

Before this module existed, the invariant checker chained its own
closures over every queue's ``on_drop``/``on_mark`` slots, and any other
observer would have had to install a parallel chain.  The registry owns
those slots instead: components announce themselves once at construction
(``sim.hooks.port_created(self)`` …) and the registry installs a *single*
dispatcher per queue that fans out to every subscriber — the invariant
checker, the tracer, or both.

Cost model (the part PR 3 cares about):

- ``sim.hooks`` is ``None`` unless validation or tracing is active, so the
  unobserved path pays exactly one attribute test per *component
  construction* and nothing per packet.
- The per-enqueue chain (needed only for queue high-watermarks) is
  installed only when a subscriber sets ``wants_enqueue`` — the checker
  does not, so validated-only runs keep enqueue untouched.
- Subscribers must be registered before components are built; the
  :class:`~repro.sim.engine.Simulator` constructor guarantees this.

Subscriber protocol (all methods optional — implement what you observe)::

    register_port(port)                 component lifecycle
    register_switch(switch)
    register_sender(sender)
    register_receiver(receiver)
    attach_machine(machine, sender)     slow_time machine created
    queue_dropped(queue, name, packet)  per-event queue instrumentation
    queue_marked(queue, name, packet)
    queue_enqueued(queue, name, packet) only if wants_enqueue = True
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.state_machine import SlowTimeStateMachine
    from ..net.port import OutputPort
    from ..net.queues import DropTailQueue
    from ..net.shared_buffer import SharedBufferSwitch
    from ..tcp.receiver import TcpReceiver
    from ..tcp.sender import TcpSender


class HookRegistry:
    """Dispatches component lifecycle + queue events to subscribers."""

    __slots__ = ("subscribers", "_queues_watched")

    def __init__(self):
        self.subscribers: List[object] = []
        self._queues_watched = 0

    def subscribe(self, subscriber: object) -> None:
        self.subscribers.append(subscriber)

    def _dispatch(self, method: str, *args) -> None:
        for subscriber in self.subscribers:
            hook = getattr(subscriber, method, None)
            if hook is not None:
                hook(*args)

    # -- component lifecycle (called from component constructors) ---------------
    def port_created(self, port: "OutputPort") -> None:
        self._dispatch("register_port", port)
        self._queues_watched += 1
        self._watch_queue(port.queue, port.name or f"queue#{self._queues_watched}")

    def switch_created(self, switch: "SharedBufferSwitch") -> None:
        self._dispatch("register_switch", switch)

    def sender_created(self, sender: "TcpSender") -> None:
        self._dispatch("register_sender", sender)

    def receiver_created(self, receiver: "TcpReceiver") -> None:
        self._dispatch("register_receiver", receiver)

    def machine_created(self, machine: "SlowTimeStateMachine", sender: "TcpSender") -> None:
        self._dispatch("attach_machine", machine, sender)

    # -- queue instrumentation ---------------------------------------------------
    def _watch_queue(self, queue: "DropTailQueue", name: str) -> None:
        """Install one multiplexing closure per instrumented slot.

        Pre-existing user callbacks keep firing (chained after the
        subscribers), and slots with no interested subscriber are left
        untouched so unobserved events stay free.
        """
        drop_subs = tuple(s for s in self.subscribers if hasattr(s, "queue_dropped"))
        if drop_subs:
            prev_drop = queue.on_drop

            def _on_drop(packet, _subs=drop_subs, _q=queue, _n=name, _prev=prev_drop):
                for s in _subs:
                    s.queue_dropped(_q, _n, packet)
                if _prev is not None:
                    _prev(packet)

            queue.on_drop = _on_drop

        mark_subs = tuple(s for s in self.subscribers if hasattr(s, "queue_marked"))
        if mark_subs:
            prev_mark = queue.on_mark

            def _on_mark(packet, _subs=mark_subs, _q=queue, _n=name, _prev=prev_mark):
                for s in _subs:
                    s.queue_marked(_q, _n, packet)
                if _prev is not None:
                    _prev(packet)

            queue.on_mark = _on_mark

        enqueue_subs = tuple(
            s for s in self.subscribers if getattr(s, "wants_enqueue", False)
        )
        if enqueue_subs:
            prev_enq = queue.on_enqueue

            def _on_enqueue(packet, _subs=enqueue_subs, _q=queue, _n=name, _prev=prev_enq):
                for s in _subs:
                    s.queue_enqueued(_q, _n, packet)
                if _prev is not None:
                    _prev(packet)

            queue.on_enqueue = _on_enqueue

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = ", ".join(type(s).__name__ for s in self.subscribers)
        return f"HookRegistry([{names}], queues={self._queues_watched})"
