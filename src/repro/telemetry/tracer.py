"""Typed, append-only event tracing — the unified observability record.

A :class:`Tracer` turns the hook points scattered through the simulator
(queue drops and CE marks, retransmissions, RTOs with their FLoss/LAck
classification, slow_time state-machine activity, queue high-watermarks)
into one flat stream of :class:`TraceRecord` rows.  The paper's entire
diagnosis (Table I, Fig. 2, Fig. 9) is built from exactly this kind of
event-level visibility; the tracer makes it available for *any* scenario
instead of per-figure ad-hoc probes.

Cost model: when no tracer is attached, every hook point is a single
``is None`` test (senders) or entirely absent (queues — the dispatch
chains are only installed on watched queues).  The tracer itself never
schedules simulator events, so event counts, golden digests and RNG
draws are identical whether tracing is on or off.

Usage::

    tracer = Tracer()
    sim = Simulator(seed=1, tracer=tracer)
    ... build topology / workload, run ...
    for rec in tracer.of_kind("rto"):
        print(rec.time_ns, rec.subject, rec.detail)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, NamedTuple, Tuple, Union

from .collector import Collector

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.state_machine import SlowTimeStateMachine
    from ..net.queues import DropTailQueue
    from ..sim.engine import Simulator
    from ..tcp.sender import TcpSender
    from ..tcp.timeouts import TimeoutKind

#: Every record kind a tracer can emit.
EVENT_KINDS = (
    "drop",  # queue rejected a packet (subject: queue, value: occupancy B)
    "mark",  # queue set CE on a packet (subject: queue, value: occupancy B)
    "retransmit",  # sender retransmitted (subject: flow, value: seq)
    "rto",  # RTO fired (subject: flow, value: backoff, detail: FLoss/LAck)
    "state",  # slow_time machine transition (detail: "FROM->TO")
    "slow_time",  # slow_time value changed (value: slow_time ns)
    "queue_hwm",  # new queue occupancy high-watermark (value: bytes)
)


class TraceRecord(NamedTuple):
    """One traced event: a uniform 5-tuple, cheap to append and serialize."""

    time_ns: int
    kind: str
    subject: str
    value: Union[int, float]
    detail: str = ""


class Tracer(Collector):
    """Collects :class:`TraceRecord` rows from the engine's hook points.

    Attach by passing the tracer to the :class:`~repro.sim.engine.Simulator`
    constructor *before* building components — the hook registry wires the
    queue/sender/state-machine probes at component construction.

    The record list is append-only and bounded by ``max_records``; once the
    bound is hit further events are silently dropped and ``truncated`` is
    set (a trace that lies by omission must say so).
    """

    #: HookRegistry flag: install the per-enqueue chain (needed for queue
    #: high-watermarks).  Subscribers that don't set this keep enqueue free.
    wants_enqueue = True

    def __init__(self, max_records: int = 2_000_000):
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.truncated = False
        self.sim: "Simulator" = None  # bound by Simulator.__init__
        self._hwm: Dict["DropTailQueue", int] = {}
        self._flow_labels: Dict[int, int] = {}

    def bind(self, sim: "Simulator") -> None:
        self.sim = sim

    def register_sender(self, sender: "TcpSender") -> None:
        """Dispatched by the HookRegistry at sender construction."""
        self._flow_label(sender.flow_id)

    def _flow_label(self, flow_id: int) -> int:
        """Per-trace flow ordinal (assigned in sender-creation order).

        Raw flow ids come from a process-global counter (unique across
        *every* simulation in the process), so writing them into records
        would make two identical runs trace differently.  The ordinal is
        per-run deterministic, which keeps traces byte-comparable across
        runs and processes.
        """
        labels = self._flow_labels
        label = labels.get(flow_id)
        if label is None:
            label = labels[flow_id] = len(labels)
        return label

    # -- emission ---------------------------------------------------------------
    def _emit(self, kind: str, subject: str, value, detail: str = "") -> None:
        records = self.records
        if len(records) >= self.max_records:
            self.truncated = True
            return
        records.append(TraceRecord(self.sim.now, kind, subject, value, detail))

    # -- queue hooks (dispatched by the HookRegistry) ----------------------------
    def queue_dropped(self, queue: "DropTailQueue", name: str, h: int) -> None:
        flow_id = self.sim.pool.flow_id[h]
        self._emit("drop", name, queue.occupancy_bytes, f"flow={self._flow_label(flow_id)}")

    def queue_marked(self, queue: "DropTailQueue", name: str, h: int) -> None:
        flow_id = self.sim.pool.flow_id[h]
        self._emit("mark", name, queue.occupancy_bytes, f"flow={self._flow_label(flow_id)}")

    def queue_enqueued(self, queue: "DropTailQueue", name: str, h: int) -> None:
        occupancy = queue.occupancy_bytes
        if occupancy > self._hwm.get(queue, -1):
            self._hwm[queue] = occupancy
            self._emit("queue_hwm", name, occupancy)

    # -- sender hooks (called directly via sender._tracer) -----------------------
    def rto_fired(self, sender: "TcpSender", kind: "TimeoutKind") -> None:
        self._emit("rto", f"flow:{self._flow_label(sender.flow_id)}", sender.rto_backoff, kind.value)

    def retransmitted(self, sender: "TcpSender", seq: int) -> None:
        self._emit("retransmit", f"flow:{self._flow_label(sender.flow_id)}", seq)

    # -- state-machine hook (dispatched by the HookRegistry) ---------------------
    def attach_machine(self, machine: "SlowTimeStateMachine", sender: "TcpSender") -> None:
        subject = f"flow:{self._flow_label(sender.flow_id)}"
        prev_state = [machine.state]

        def _on_update(m: "SlowTimeStateMachine", cause: str) -> None:
            state = m.state
            if state is not prev_state[0]:
                self._emit(
                    "state",
                    subject,
                    m.slow_time_ns,
                    f"{prev_state[0].value}->{state.value}",
                )
                prev_state[0] = state
            self._emit("slow_time", subject, m.slow_time_ns, cause)

        machine.on_update = _on_update

    # -- views ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def high_watermarks(self) -> Dict[str, int]:
        """Final per-queue occupancy peaks, keyed by queue name."""
        peaks: Dict[str, int] = {}
        for record in self.records:
            if record.kind == "queue_hwm":
                peaks[record.subject] = int(record.value)
        return peaks

    # Collector-style export surface (see repro.telemetry.collector).
    def schema(self) -> Tuple[str, ...]:
        return TraceRecord._fields

    def rows(self) -> List[TraceRecord]:
        return self.records

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer({len(self.records)} records, truncated={self.truncated})"
