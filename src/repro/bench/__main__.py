"""Deprecated entry point: use ``python -m repro bench``.

Kept as a thin forwarding shim so existing scripts and CI configurations
keep working; the implementation lives in :mod:`repro.bench.cli`.
"""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    print(
        "repro: 'python -m repro.bench' is deprecated; use 'python -m repro bench'",
        file=sys.stderr,
    )
    sys.exit(main())
