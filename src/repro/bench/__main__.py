"""``python -m repro.bench`` — engine throughput benchmark & CI gate.

Modes
-----
- Default: time every scenario, print a table.
- ``--quick``: the small scenario subset (what CI runs).
- ``--write PATH``: also write the results as a baseline file.
- ``--baseline PATH``: compare against a committed baseline and exit
  non-zero on a regression beyond ``--max-regression`` (default 25%).

The regression gate compares *this machine now* against *the machine that
wrote the baseline*, so the tolerance is deliberately loose; it exists to
catch order-of-magnitude mistakes (an accidentally quadratic queue, a
debug loop left in the hot path), not single-digit noise.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .harness import compare, load_baseline, run_benchmarks, write_baseline
from .scenarios import SCENARIOS, select


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Time the simulation engine on canonical scenarios.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run only the quick subset (the CI gate set)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="runs per scenario, median reported (default: 5, or 3 with --quick)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="benchmark only this scenario (repeatable); see --list",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list scenario names and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="compare against a committed baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="fraction of events/sec loss tolerated vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        help="write the results to PATH as a new baseline",
    )
    args = parser.parse_args(argv)

    if args.list:
        for scenario in SCENARIOS:
            tag = " [quick]" if scenario.quick else ""
            print(f"{scenario.name}{tag}: {scenario.description}")
        return 0

    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 5)
    scenarios = select(names=args.scenario, quick=args.quick)

    payload = run_benchmarks(scenarios, repeats, progress=print)

    if args.write:
        write_baseline(args.write, payload)
        print(f"wrote baseline: {args.write}")

    if args.baseline:
        baseline = load_baseline(args.baseline)
        lines, ok = compare(payload, baseline, args.max_regression)
        print(f"\ncomparison vs {args.baseline} (gate: -{args.max_regression:.0%}):")
        for line in lines:
            print(f"  {line}")
        if not ok:
            print("benchmark gate FAILED")
            return 1
        print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
