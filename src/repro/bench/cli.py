"""``python -m repro bench`` — engine throughput benchmark & CI gate.

Modes
-----
- Default: time every scenario, print a table.
- ``--quick``: the small scenario subset (what CI runs).
- ``--write PATH``: also write the results as a baseline file.
- ``--load PATH``: reuse results from a previous ``--write`` instead of
  re-running the scenarios (compare-only mode).
- ``--baseline PATH``: compare against a baseline and exit non-zero on a
  regression beyond ``--max-regression`` (default 25%) or on event-count
  drift.
- ``--no-perf-gate``: report the throughput delta without failing on it
  (event-count drift still fails).  Use when the baseline was written on
  different hardware — absolute events/sec is not comparable across
  machines.
- ``--allow-event-drift``: downgrade event-count mismatches to warnings
  and skip the throughput check for those scenarios.  Use when comparing
  across commits whose behaviour legitimately differs.
- ``--profile``: run each selected scenario once with the
  :class:`~repro.telemetry.profiler.EngineProfiler` attached and print the
  dispatch-time breakdown by callback kind instead of the timing table
  (profiled runs use a timing dispatch loop; never gate on them).

The throughput gate is only meaningful when both sides ran on the same
machine.  CI therefore benchmarks the merge-base and the PR head in one
job and gates on that pair (``--allow-event-drift``, since behaviour may
intentionally change across commits), while the committed
``BENCH_engine.json`` is checked with ``--no-perf-gate`` — its event
counts gate, its throughput is the informational perf trajectory.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..cli import add_common_arguments, apply_common_arguments
from .harness import compare, load_baseline, run_benchmarks, write_baseline
from .scenarios import SCENARIOS, select


def _profile(args: argparse.Namespace) -> int:
    """Run the selected scenarios under the engine profiler."""
    from ..exec.scenario import run_scenario
    from ..telemetry.profiler import EngineProfiler

    scenarios = select(names=args.scenario, quick=args.quick)
    for scenario in scenarios:
        profiler = EngineProfiler()
        run_scenario(scenario.spec, profiler=profiler)
        print(f"\n== {scenario.name}: {scenario.description}")
        print(profiler.report())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Time the simulation engine on canonical scenarios.",
    )
    add_common_arguments(
        parser,
        quick=True,
        quick_help="run only the quick scenario subset (the CI gate set)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="runs per scenario, median reported (default: 5, or 3 with --quick)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="benchmark only this scenario (repeatable); see --list",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list scenario names and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="compare against a baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="fraction of events/sec loss tolerated vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--no-perf-gate",
        action="store_true",
        help="report the events/sec delta without failing on it "
        "(for baselines written on different hardware)",
    )
    parser.add_argument(
        "--allow-event-drift",
        action="store_true",
        help="warn instead of fail on event-count mismatches "
        "(for cross-commit comparisons with intended behaviour changes)",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        help="write the results to PATH as a new baseline",
    )
    parser.add_argument(
        "--load",
        metavar="PATH",
        help="reuse results from a previous --write instead of re-running "
        "(compare-only mode; --repeats/--scenario/--quick are ignored)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the dispatch loop by callback kind instead of timing "
        "(one run per scenario; incompatible with --baseline/--write/--load)",
    )
    args = parser.parse_args(argv)
    apply_common_arguments(args)

    if args.list:
        for scenario in SCENARIOS:
            tag = " [quick]" if scenario.quick else ""
            print(f"{scenario.name}{tag}: {scenario.description}")
        return 0

    if args.profile:
        if args.baseline or args.write or args.load:
            parser.error("--profile is incompatible with --baseline/--write/--load")
        return _profile(args)

    if args.load:
        payload = load_baseline(args.load)
        print(f"loaded results: {args.load}")
    else:
        repeats = args.repeats if args.repeats is not None else (3 if args.quick else 5)
        scenarios = select(names=args.scenario, quick=args.quick)
        payload = run_benchmarks(scenarios, repeats, progress=print)

    if args.write:
        write_baseline(args.write, payload)
        print(f"wrote baseline: {args.write}")

    if args.baseline:
        baseline = load_baseline(args.baseline)
        lines, ok = compare(
            payload,
            baseline,
            args.max_regression,
            perf_gate=not args.no_perf_gate,
            allow_event_drift=args.allow_event_drift,
        )
        gate = "informational" if args.no_perf_gate else f"-{args.max_regression:.0%}"
        print(f"\ncomparison vs {args.baseline} (perf gate: {gate}):")
        for line in lines:
            print(f"  {line}")
        if not ok:
            print("benchmark gate FAILED")
            return 1
        print("benchmark gate passed")
    return 0
