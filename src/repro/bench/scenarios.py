"""Canonical engine-throughput scenarios.

Each scenario is one :class:`~repro.exec.scenario.ScenarioSpec` chosen to
exercise the hot path the way the paper's experiments do: pure incast
fan-in at several concurrency levels for both DCTCP and DCTCP+, plus the
Fig. 11 mix where incast competes with persistent background flows.

The specs are deterministic (fixed seed), so the *event count* of every
scenario is an invariant: a benchmark run whose event count differs from
the committed baseline is a behaviour change, not a performance change,
and the comparison fails loudly rather than reporting a bogus speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..exec.scenario import ScenarioSpec


@dataclass(frozen=True)
class BenchScenario:
    """One named benchmark point.

    ``quick`` marks the subset run by ``python -m repro.bench --quick``
    (the CI gate): small enough to finish in seconds, still covering both
    protocols and the background mix.
    """

    name: str
    description: str
    spec: ScenarioSpec
    quick: bool = False


def _incast(protocol: str, n_flows: int, rounds: int = 10) -> ScenarioSpec:
    return ScenarioSpec.create(protocol, n_flows, rounds=rounds, seed=1)


SCENARIOS: Tuple[BenchScenario, ...] = (
    BenchScenario(
        "incast-dctcp-n16",
        "16-flow incast, DCTCP, 10 rounds",
        _incast("dctcp", 16),
        quick=True,
    ),
    BenchScenario(
        "incast-dctcp-n64",
        "64-flow incast, DCTCP, 10 rounds (the headline engine benchmark)",
        _incast("dctcp", 64),
        quick=True,
    ),
    BenchScenario(
        "incast-dctcp-n256",
        "256-flow incast, DCTCP, 10 rounds",
        _incast("dctcp", 256),
    ),
    BenchScenario(
        "incast-dctcp+-n16",
        "16-flow incast, DCTCP+, 10 rounds",
        _incast("dctcp+", 16),
        quick=True,
    ),
    BenchScenario(
        "incast-dctcp+-n64",
        "64-flow incast, DCTCP+, 10 rounds",
        _incast("dctcp+", 64),
        quick=True,
    ),
    BenchScenario(
        "incast-dctcp+-n256",
        "256-flow incast, DCTCP+, 10 rounds",
        _incast("dctcp+", 256),
    ),
    BenchScenario(
        "incast-dctcp+-n1024",
        "1024-flow incast, DCTCP+, 10 rounds (the massive-concurrency regime)",
        _incast("dctcp+", 1024),
        quick=True,
    ),
    BenchScenario(
        "incast-dctcp+-n4096",
        "4096-flow incast, DCTCP+, 2 rounds (full runs only; gated out of --quick)",
        _incast("dctcp+", 4096, rounds=2),
    ),
    BenchScenario(
        "fig11-background-mix",
        "64-flow DCTCP+ incast over 2 persistent background flows (Fig. 11 mix)",
        ScenarioSpec.create(
            "dctcp+",
            64,
            rounds=5,
            seed=1,
            with_background=True,
            min_cwnd_mss=1.0,
            incast_overrides={"round_deadline_ns": 5_000_000_000},
        ),
    ),
)


def select(names=None, quick: bool = False) -> Tuple[BenchScenario, ...]:
    """Resolve the scenario set for one benchmark invocation.

    ``names`` (if given) filters by exact scenario name; ``quick`` restricts
    to the quick subset.  Unknown names raise ``KeyError`` so typos in CI
    configuration cannot silently benchmark nothing.
    """
    chosen = SCENARIOS
    if quick:
        chosen = tuple(s for s in chosen if s.quick)
    if names:
        by_name = {s.name: s for s in SCENARIOS}
        missing = [n for n in names if n not in by_name]
        if missing:
            raise KeyError(f"unknown benchmark scenario(s): {', '.join(missing)}")
        chosen = tuple(by_name[n] for n in names)
    return chosen
