"""Benchmark harness: time scenarios, encode/compare baselines.

The measurement unit is one direct :func:`~repro.exec.scenario.run_scenario`
call — no executor, no result cache — so every repeat is a cold simulation
of the spec and the wall clock measures only the engine.  Each scenario is
simulated ``repeats`` times and summarized by the **median** events/sec and
wall seconds, which is robust to one-off scheduler hiccups without hiding
sustained slowness.

:func:`compare` diffs two result payloads with two independently gateable
checks — events/sec regression and event-count drift.  CI uses it twice:
the *perf* gate compares the PR head against the merge-base benchmarked on
the same runner (absolute throughput is meaningless across machines), and
the committed ``BENCH_engine.json`` gates only event-count drift (counts
are deterministic and machine-independent) while its throughput delta is
reported informationally as the long-run perf trajectory.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import statistics
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exec.scenario import run_scenario
from .scenarios import BenchScenario

#: Baseline file schema version (bump on shape changes).
BASELINE_SCHEMA = 1


@dataclass
class ScenarioTiming:
    """Median timing of one scenario over ``repeats`` runs.

    The allocation columns come from one *extra* instrumented run (see
    :func:`measure_allocations`): ``tracemalloc`` roughly halves engine
    throughput, so it never runs during the timed repeats.
    """

    name: str
    events: int
    median_events_per_sec: float
    median_wall_s: float
    alloc_peak_kb: float
    gc_collections: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "median_events_per_sec": round(self.median_events_per_sec, 1),
            "median_wall_s": round(self.median_wall_s, 4),
            "alloc_peak_kb": round(self.alloc_peak_kb, 1),
            "gc_collections": self.gc_collections,
        }


def measure_allocations(scenario: BenchScenario) -> Tuple[float, int]:
    """One instrumented run: (tracemalloc peak KiB, GC collections).

    Object churn shows up here long before it shows up in wall clock —
    the struct-of-arrays packet pool exists precisely to keep this flat
    as the event count grows, so the bench report tracks it per scenario.
    """
    collections_before = sum(s["collections"] for s in gc.get_stats())
    tracemalloc.start()
    try:
        run_scenario(scenario.spec)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    collections = sum(s["collections"] for s in gc.get_stats()) - collections_before
    return peak / 1024.0, collections


def time_scenario(scenario: BenchScenario, repeats: int) -> ScenarioTiming:
    """Run one scenario ``repeats`` times; return the median timing."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    walls: List[float] = []
    events = 0
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_scenario(scenario.spec)
        walls.append(time.perf_counter() - started)
        events = result.events_processed
    median_wall = statistics.median(walls)
    alloc_peak_kb, gc_collections = measure_allocations(scenario)
    return ScenarioTiming(
        name=scenario.name,
        events=events,
        median_events_per_sec=events / median_wall,
        median_wall_s=median_wall,
        alloc_peak_kb=alloc_peak_kb,
        gc_collections=gc_collections,
    )


def environment_info() -> Dict[str, object]:
    """Host fingerprint stored alongside a baseline (context, not identity:
    comparisons never require the environment to match)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def run_benchmarks(
    scenarios: Sequence[BenchScenario],
    repeats: int,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Time every scenario; return the JSON-ready baseline payload."""
    timings: Dict[str, Dict[str, object]] = {}
    for scenario in scenarios:
        timing = time_scenario(scenario, repeats)
        timings[scenario.name] = timing.to_dict()
        if progress is not None:
            progress(
                f"{scenario.name}: {timing.events} events, "
                f"{timing.median_events_per_sec:,.0f} events/s, "
                f"{timing.median_wall_s:.3f} s, "
                f"alloc peak {timing.alloc_peak_kb:,.0f} KiB, "
                f"{timing.gc_collections} GC collections"
            )
    return {
        "schema": BASELINE_SCHEMA,
        "repeats": repeats,
        "environment": environment_info(),
        "scenarios": timings,
    }


def load_baseline(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    schema = payload.get("schema")
    if schema != BASELINE_SCHEMA:
        raise ValueError(f"baseline {path} has schema {schema!r}, expected {BASELINE_SCHEMA}")
    return payload


def write_baseline(path: str, payload: Dict[str, object]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def compare(
    current: Dict[str, object],
    baseline: Dict[str, object],
    max_regression: float,
    *,
    perf_gate: bool = True,
    allow_event_drift: bool = False,
) -> Tuple[List[str], bool]:
    """Diff a fresh run against a baseline.

    Returns ``(report_lines, ok)``.  Two independent checks, each of which
    can be a gate or informational:

    - **Throughput** (``perf_gate``): a scenario fails when its median
      events/sec falls more than ``max_regression`` (a fraction, e.g. 0.25)
      below the baseline.  Only meaningful when both sides ran on the same
      machine — CI benchmarks the merge-base and the PR head in one job and
      gates on that; against a baseline from *another* machine pass
      ``perf_gate=False`` to report the delta without failing.
    - **Event counts** (``allow_event_drift``): counts are deterministic
      and machine-independent, so a mismatch means simulation behaviour
      changed and fails by default.  When comparing across *commits* whose
      behaviour legitimately differs (an intended change with regenerated
      goldens), ``allow_event_drift=True`` downgrades the mismatch to a
      warning and skips the throughput check for that scenario (the
      timings are not comparable).

    Scenarios present on only one side are reported but never fail the
    gate (the set evolves across PRs).
    """
    lines: List[str] = []
    ok = True
    base_scenarios: Dict[str, Dict] = baseline["scenarios"]
    cur_scenarios: Dict[str, Dict] = current["scenarios"]
    for name, cur in cur_scenarios.items():
        base = base_scenarios.get(name)
        if base is None:
            lines.append(f"{name}: no baseline entry (skipped)")
            continue
        if cur["events"] != base["events"]:
            if allow_event_drift:
                lines.append(
                    f"{name}: event count changed {base['events']} -> "
                    f"{cur['events']} (behaviour differs; throughput not "
                    "comparable, skipped)"
                )
            else:
                ok = False
                lines.append(
                    f"{name}: FAIL event count changed "
                    f"{base['events']} -> {cur['events']} (simulation behaviour "
                    "changed; regenerate the baseline only if this is intended)"
                )
            continue
        cur_eps = cur["median_events_per_sec"]
        base_eps = base["median_events_per_sec"]
        delta = cur_eps / base_eps - 1.0
        verdict = "ok"
        if delta < -max_regression:
            if perf_gate:
                ok = False
                verdict = f"FAIL (>{max_regression:.0%} regression)"
            else:
                verdict = "slower (informational; gate is off)"
        lines.append(
            f"{name}: {cur_eps:,.0f} events/s vs baseline {base_eps:,.0f} "
            f"({delta:+.1%}) {verdict}"
        )
    for name in base_scenarios:
        if name not in cur_scenarios:
            lines.append(f"{name}: in baseline but not benchmarked this run")
    return lines, ok
