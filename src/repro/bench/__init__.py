"""Engine throughput benchmarking (``python -m repro.bench``).

Times canonical simulation scenarios end-to-end and maintains the
committed performance baseline (``BENCH_engine.json``) that the CI bench
job gates pull requests against.  See :mod:`repro.bench.scenarios` for
the scenario set and :mod:`repro.bench.harness` for the measurement and
comparison machinery.
"""

from .harness import (
    BASELINE_SCHEMA,
    ScenarioTiming,
    compare,
    environment_info,
    load_baseline,
    measure_allocations,
    run_benchmarks,
    time_scenario,
    write_baseline,
)
from .scenarios import SCENARIOS, BenchScenario, select

__all__ = [
    "BASELINE_SCHEMA",
    "BenchScenario",
    "SCENARIOS",
    "ScenarioTiming",
    "compare",
    "environment_info",
    "load_baseline",
    "measure_allocations",
    "run_benchmarks",
    "select",
    "time_scenario",
    "write_baseline",
]
