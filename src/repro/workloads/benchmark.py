"""Production-cluster benchmark traffic (paper Section VI.D).

Three streams share the testbed, following the statistics of the DCTCP
paper's production cluster:

- **Queries**: Poisson arrivals; each query fans out over
  ``query_fanout`` **persistent** worker connections (round-robin over the
  servers, exactly like the incast benchmark) that each respond with 2 KB
  to the aggregator.  The query's FCT is the time until *all* responses
  arrive (partition/aggregate semantics).  Persistence matters twice: it
  is how the real benchmark runs, and it is what lets DCTCP+'s slow_time
  state span queries — a fresh 2-packet connection has no room to pace.
- **Short messages**: 50 KB - 1 MB flows between random hosts.
- **Background flows**: heavy-tailed 1 KB - 50 MB flows between random
  hosts, bursty inter-arrivals.

The paper runs 7,000 queries and 7,000 background flows with
``RTO_min = 10 ms`` for both DCTCP+ and DCTCP; Fig. 13 reports the
mean / 95th / 99th-percentile FCT per category.  With a fan-in of a few
hundred flows per query (this paper's regime), each query is itself a
micro-incast: DCTCP takes ~one 10 ms RTO per query on average (mean FCT
13.6 ms) while DCTCP+ paces through at 4.1 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..metrics.stats import Summary
from ..net.host import Host
from ..net.topology import TwoTierTree
from ..sim.engine import Simulator
from ..sim.units import KB, MS
from ..tcp.receiver import TcpReceiver
from ..tcp.sender import TcpSender
from .distributions import (
    BACKGROUND_FLOW_SIZE_CDF,
    BACKGROUND_INTERARRIVAL_CDF,
    SHORT_MESSAGE_SIZE_CDF,
    EmpiricalCDF,
    exponential_interarrival_ns,
    sample_flow_size_bytes,
)
from .ids import next_flow_id
from .protocols import ProtocolSpec


@dataclass
class BenchmarkConfig:
    """Scale and shape of the benchmark mix."""

    n_queries: int = 7000
    n_background: int = 7000
    n_short_messages: int = 1000
    #: concurrent response flows per query.  The paper studies the
    #: massive-fan-in regime (its incast experiments run to 200+ flows);
    #: 200 makes each query a micro-incast that overflows the pipeline
    #: capacity unless paced.
    query_fanout: int = 200
    query_response_bytes: int = 2 * KB
    query_interarrival_mean_ns: int = 10 * MS
    #: per-request issue spacing at the aggregator for query fan-out
    #: (2 KB query requests issue faster than the incast benchmark's
    #: full-response requests).
    request_spacing_ns: int = 20_000
    #: probability a short/background flow targets the aggregator (and so
    #: crosses the studied bottleneck) rather than another server.
    to_aggregator_prob: float = 0.5
    #: optional cap on sampled flow sizes — used by the reduced-scale
    #: benches so a single 50 MB tail sample cannot dominate the runtime.
    max_flow_bytes: Optional[int] = None
    #: distributions (overridable for sensitivity studies)
    background_size_cdf: EmpiricalCDF = field(default=BACKGROUND_FLOW_SIZE_CDF)
    background_interarrival_cdf: EmpiricalCDF = field(default=BACKGROUND_INTERARRIVAL_CDF)
    short_size_cdf: EmpiricalCDF = field(default=SHORT_MESSAGE_SIZE_CDF)

    def __post_init__(self) -> None:
        if self.query_fanout < 1:
            raise ValueError("query_fanout must be >= 1")
        if not 0.0 <= self.to_aggregator_prob <= 1.0:
            raise ValueError("to_aggregator_prob must be in [0, 1]")
        if min(self.n_queries, self.n_background, self.n_short_messages) < 0:
            raise ValueError("stream counts must be non-negative")


@dataclass
class FlowRecord:
    """Completion record for one benchmark flow or query."""

    category: str  # "query" | "background" | "short"
    start_ns: int
    end_ns: int
    total_bytes: int
    timeouts: int

    @property
    def fct_ns(self) -> int:
        return self.end_ns - self.start_ns


class _QueryEngine:
    """Persistent partition/aggregate fan-out shared by all queries.

    One TCP connection per fan-out slot lives for the whole benchmark;
    query ``q``'s completion target on every connection is
    ``(q + 1) * response_bytes`` of cumulatively delivered data.  Because
    TCP delivers in order, targets complete in issue order per connection.
    """

    def __init__(self, workload: "BenchmarkWorkload"):
        self.wl = workload
        cfg = workload.config
        tree = workload.tree
        sim = workload.sim
        self.resp_bytes = cfg.query_response_bytes
        self.senders: List[TcpSender] = []
        self.receivers: List[TcpReceiver] = []
        self.delivered: List[int] = []
        self.next_target: List[int] = []  # per-flow index of next query target
        self.pending: Dict[int, int] = {}  # query index -> flows not yet done
        self.start_ns: Dict[int, int] = {}
        self.issued = 0
        self._one_way = tree.baseline_rtt_ns() // 2
        for i in range(cfg.query_fanout):
            server = tree.servers[i % len(tree.servers)]
            flow_id = next_flow_id()
            receiver = TcpReceiver(
                sim,
                tree.aggregator,
                server.node_id,
                flow_id,
                expected_bytes=None,
                on_data=self._make_on_data(i),
            )
            sender = workload.spec.make_sender(sim, server, tree.aggregator.node_id, flow_id)
            self.senders.append(sender)
            self.receivers.append(receiver)
            self.delivered.append(0)
            self.next_target.append(0)

    def issue(self) -> int:
        """Launch the next query; returns its index."""
        q = self.issued
        self.issued += 1
        cfg = self.wl.config
        sim = self.wl.sim
        self.pending[q] = cfg.query_fanout
        self.start_ns[q] = sim.now
        for i, sender in enumerate(self.senders):
            delay = self._one_way + i * cfg.request_spacing_ns
            sim.schedule(delay, self._respond, sender)
        return q

    def _respond(self, sender: TcpSender) -> None:
        if not sender.closed:
            sender.send(self.resp_bytes)

    def _make_on_data(self, i: int):
        def _on_data(nbytes: int) -> None:
            self.delivered[i] += nbytes
            while (
                self.next_target[i] < self.issued
                and self.delivered[i] >= (self.next_target[i] + 1) * self.resp_bytes
            ):
                q = self.next_target[i]
                self.next_target[i] += 1
                self.pending[q] -= 1
                if self.pending[q] == 0:
                    del self.pending[q]
                    wl = self.wl
                    wl._record(
                        FlowRecord(
                            "query",
                            self.start_ns.pop(q),
                            wl.sim.now,
                            self.resp_bytes * len(self.senders),
                            0,
                        )
                    )
                    wl._flow_finished()

        return _on_data

    @property
    def total_timeouts(self) -> int:
        return sum(s.stats.timeout_count for s in self.senders)

    def close(self) -> None:
        for s in self.senders:
            s.close()
        for r in self.receivers:
            r.close()


class BenchmarkWorkload:
    """Drives the three-stream benchmark mix to completion."""

    def __init__(
        self,
        sim: Simulator,
        tree: TwoTierTree,
        spec: ProtocolSpec,
        config: Optional[BenchmarkConfig] = None,
    ):
        self.sim = sim
        self.tree = tree
        self.spec = spec
        self.config = config or BenchmarkConfig()
        if spec.tcp_config.seed_rtt_ns is None:
            spec.tcp_config = spec.tcp_config.with_overrides(seed_rtt_ns=tree.baseline_rtt_ns())
        self.records: List[FlowRecord] = []
        self.finished = False
        self._queries_left = self.config.n_queries
        self._bg_left = self.config.n_background
        self._short_left = self.config.n_short_messages
        self._open_flows = 0
        self._rng_query = sim.stream("benchmark/query")
        self._rng_bg = sim.stream("benchmark/background")
        self._rng_short = sim.stream("benchmark/short")
        self._started = False
        self._stop_on_finish = False
        self.query_engine: Optional[_QueryEngine] = None

    # -- public --------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("benchmark already started")
        self._started = True
        if self.config.n_queries > 0:
            self.query_engine = _QueryEngine(self)
            self.sim.schedule(
                exponential_interarrival_ns(
                    self._rng_query, self.config.query_interarrival_mean_ns
                ),
                self._next_query,
            )
        if self.config.n_background > 0:
            self.sim.schedule(
                max(1, int(self.config.background_interarrival_cdf.sample(self._rng_bg))),
                self._next_background,
            )
        if self.config.n_short_messages > 0:
            self.sim.schedule(
                max(1, int(self.config.background_interarrival_cdf.sample(self._rng_short))),
                self._next_short,
            )
        self._check_done()

    def run_to_completion(self, max_events: Optional[int] = None) -> None:
        """Start (if needed) and pump the simulator until all flows finish.

        Only runs pumped here stop at workload completion; a caller driving
        ``sim.run(until=...)`` itself runs to its own bound.
        """
        if not self._started:
            self.start()
        if not self.finished:
            self._stop_on_finish = True
            try:
                self.sim.run(max_events=max_events)
            finally:
                self._stop_on_finish = False

    def close(self) -> None:
        if self.query_engine is not None:
            self.query_engine.close()

    # -- stream generators -------------------------------------------------------
    def _next_query(self) -> None:
        if self._queries_left <= 0:
            return
        self._queries_left -= 1
        self._open_flows += 1
        self.query_engine.issue()
        if self._queries_left > 0:
            self.sim.schedule(
                exponential_interarrival_ns(
                    self._rng_query, self.config.query_interarrival_mean_ns
                ),
                self._next_query,
            )

    def _next_background(self) -> None:
        if self._bg_left <= 0:
            return
        self._bg_left -= 1
        size = sample_flow_size_bytes(self._rng_bg, self.config.background_size_cdf)
        self._launch_point_flow("background", size, self._rng_bg)
        if self._bg_left > 0:
            gap = max(1, int(self.config.background_interarrival_cdf.sample(self._rng_bg)))
            self.sim.schedule(gap, self._next_background)

    def _next_short(self) -> None:
        if self._short_left <= 0:
            return
        self._short_left -= 1
        size = sample_flow_size_bytes(self._rng_short, self.config.short_size_cdf)
        self._launch_point_flow("short", size, self._rng_short)
        if self._short_left > 0:
            gap = max(1, int(self.config.background_interarrival_cdf.sample(self._rng_short)))
            self.sim.schedule(gap, self._next_short)

    # -- point-to-point flows ------------------------------------------------------
    def _launch_point_flow(self, category: str, size: int, rng) -> None:
        cfg = self.config
        if cfg.max_flow_bytes is not None:
            size = min(size, cfg.max_flow_bytes)
        tree = self.tree
        src = tree.servers[rng.randrange(len(tree.servers))]
        if rng.random() < cfg.to_aggregator_prob:
            dst: Host = tree.aggregator
        else:
            others = [s for s in tree.servers if s is not src]
            dst = others[rng.randrange(len(others))]
        flow_id = next_flow_id()
        start_ns = self.sim.now
        self._open_flows += 1
        state: Dict[str, object] = {}

        def _on_complete(receiver: TcpReceiver) -> None:
            sender: TcpSender = state["sender"]  # type: ignore[assignment]
            self._record(
                FlowRecord(category, start_ns, self.sim.now, size, sender.stats.timeout_count)
            )
            sender.close()
            receiver.close()
            self._flow_finished()

        receiver = TcpReceiver(
            self.sim,
            dst,
            src.node_id,
            flow_id,
            expected_bytes=size,
            on_complete=_on_complete,
        )
        sender = self.spec.make_sender(self.sim, src, dst.node_id, flow_id)
        state["sender"] = sender
        sender.send(size)

    # -- completion tracking ---------------------------------------------------------
    def _record(self, record: FlowRecord) -> None:
        self.records.append(record)

    def _flow_finished(self) -> None:
        self._open_flows -= 1
        self._check_done()

    def _check_done(self) -> None:
        if (
            self._queries_left == 0
            and self._bg_left == 0
            and self._short_left == 0
            and self._open_flows == 0
        ):
            self.finished = True
            # Engine-level stop flag instead of a per-event stop_when
            # predicate — but only when run_to_completion is the pump, so a
            # caller's own sim.run(until=...) keeps its scope
            # (run_to_completion guards the already-finished case).
            if self._stop_on_finish:
                self.sim.request_stop()

    # -- views --------------------------------------------------------------------------
    def fct_summary_ms(self, category: str) -> Summary:
        """mean/p95/p99 FCT (milliseconds) for one category (Fig. 13)."""
        fcts = [r.fct_ns / 1e6 for r in self.records if r.category == category]
        return Summary.of(fcts)

    def timeout_total(self, category: str) -> int:
        """Timeouts attributed to a category's senders."""
        if category == "query":
            return self.query_engine.total_timeouts if self.query_engine else 0
        return sum(r.timeouts for r in self.records if r.category == category)
