"""Named protocol bundles over the congestion-control registry.

A :class:`ProtocolSpec` pairs a registered
:class:`~repro.tcp.cc.CongestionControl` strategy with its configuration
(:class:`~repro.tcp.config.TcpConfig` + the slow_time law's
:class:`~repro.core.config.DctcpPlusConfig`).  Dispatch — which sender
class, whether the plus config applies, the display label — lives in the
registry (:mod:`repro.tcp.cc`), so adding a competitor is a registration,
not a new branch here.

The paper's four variants:

- ``"tcp"``        — TCP New Reno, no ECN (the paper's TCP baseline).
- ``"dctcp"``      — DCTCP.
- ``"dctcp+"``     — full DCTCP+ (randomized slow_time).
- ``"dctcp+norand"`` — "partially implemented DCTCP+" (Fig. 6): slow_time
  regulation without the desynchronizing randomization.

Section VII extensions (the enhancement coalesced with other transports):

- ``"tcp+"``   — New Reno + slow_time regulation (loss-channel driven).
- ``"d2tcp"``  — deadline-aware DCTCP (Vamanan et al.).
- ``"d2tcp+"`` — D2TCP carrying the slow_time enhancement.

Arena competitors from PAPERS.md:

- ``"pulser"`` — explicit incast-onset notification (arXiv:1809.09751).
- ``"tbtcp"``  — tiny-buffer pacing + capped window (arXiv:1909.05392).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.config import DctcpPlusConfig
from ..net.host import Host
from ..net.topology import TwoTierTree
from ..sim.engine import Simulator
from ..tcp.cc import cc_names, get_cc
from ..tcp.config import TcpConfig
from ..tcp.sender import TcpSender

#: All registered strategy names at import time, in registration order.
#: Kept as a module constant for parametrized tests and the fuzzer; new
#: registrations after import are still reachable through spec_for/get_cc.
PROTOCOLS = cc_names()


@dataclass
class ProtocolSpec:
    """A named protocol plus its configuration."""

    name: str
    tcp_config: TcpConfig = field(default_factory=TcpConfig)
    plus_config: DctcpPlusConfig = field(default_factory=DctcpPlusConfig)

    def __post_init__(self) -> None:
        self.cc = get_cc(self.name)  # raises on unknown names
        if self.name == "dctcp+norand":
            self.plus_config = self.plus_config.with_overrides(randomize=False)

    @property
    def is_plus(self) -> bool:
        """Whether the slow_time enhancement mechanism is active."""
        return self.cc.slow_time

    @property
    def label(self) -> str:
        """Display name matching the paper's figures."""
        return self.cc.label

    def install_network(self, tree: TwoTierTree) -> None:
        """Run the strategy's network-side hook (if any) on a built tree."""
        if self.cc.install_network is not None:
            self.cc.install_network(tree)

    def make_sender(
        self,
        sim: Simulator,
        host: Host,
        dst_node_id: int,
        flow_id: int,
        on_complete: Optional[Callable[[TcpSender], None]] = None,
        deadline_ns: Optional[int] = None,
    ) -> TcpSender:
        """Instantiate the sender endpoint for this protocol.

        ``deadline_ns`` is honoured by the deadline-aware variants and
        ignored by the rest.
        """
        return self.cc.build(
            sim,
            host,
            dst_node_id,
            flow_id,
            tcp_config=self.tcp_config,
            plus_config=self.plus_config,
            on_complete=on_complete,
            deadline_ns=deadline_ns,
        )


def spec_for(
    name: str,
    tcp_overrides: Optional[dict] = None,
    plus_overrides: Optional[dict] = None,
) -> ProtocolSpec:
    """Build a :class:`ProtocolSpec` with optional config overrides."""
    tcp_config = TcpConfig(**(tcp_overrides or {}))
    plus_config = DctcpPlusConfig(**(plus_overrides or {}))
    return ProtocolSpec(name, tcp_config, plus_config)
