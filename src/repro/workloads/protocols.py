"""Protocol registry: build a sender for a named protocol variant.

The experiments compare four variants:

- ``"tcp"``        — TCP New Reno, no ECN (the paper's TCP baseline).
- ``"dctcp"``      — DCTCP.
- ``"dctcp+"``     — full DCTCP+ (randomized slow_time).
- ``"dctcp+norand"`` — "partially implemented DCTCP+" (Fig. 6): slow_time
  regulation without the desynchronizing randomization.

Section VII extensions (the enhancement coalesced with other transports):

- ``"tcp+"``   — New Reno + slow_time regulation (loss-channel driven).
- ``"d2tcp"``  — deadline-aware DCTCP (Vamanan et al.).
- ``"d2tcp+"`` — D2TCP carrying the slow_time enhancement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.config import DctcpPlusConfig
from ..core.dctcp_plus import DctcpPlusSender
from ..core.reno_plus import RenoPlusSender
from ..net.host import Host
from ..sim.engine import Simulator
from ..tcp.config import TcpConfig
from ..tcp.d2tcp import D2tcpPlusSender, D2tcpSender
from ..tcp.dctcp import DctcpSender
from ..tcp.sender import TcpSender

PROTOCOLS = ("tcp", "dctcp", "dctcp+", "dctcp+norand", "tcp+", "d2tcp", "d2tcp+")


@dataclass
class ProtocolSpec:
    """A named protocol plus its configuration."""

    name: str
    tcp_config: TcpConfig = field(default_factory=TcpConfig)
    plus_config: DctcpPlusConfig = field(default_factory=DctcpPlusConfig)

    def __post_init__(self) -> None:
        if self.name not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.name!r}; choose from {PROTOCOLS}")
        if self.name == "dctcp+norand":
            self.plus_config = self.plus_config.with_overrides(randomize=False)

    @property
    def is_plus(self) -> bool:
        """Whether the slow_time enhancement mechanism is active."""
        return self.name in ("dctcp+", "dctcp+norand", "tcp+", "d2tcp+")

    @property
    def label(self) -> str:
        """Display name matching the paper's figures."""
        return {
            "tcp": "TCP",
            "dctcp": "DCTCP",
            "dctcp+": "DCTCP+",
            "dctcp+norand": "DCTCP+ (no desync)",
            "tcp+": "TCP+",
            "d2tcp": "D2TCP",
            "d2tcp+": "D2TCP+",
        }[self.name]

    def make_sender(
        self,
        sim: Simulator,
        host: Host,
        dst_node_id: int,
        flow_id: int,
        on_complete: Optional[Callable[[TcpSender], None]] = None,
        deadline_ns: Optional[int] = None,
    ) -> TcpSender:
        """Instantiate the sender endpoint for this protocol.

        ``deadline_ns`` is honoured by the deadline-aware variants and
        ignored by the rest.
        """
        if self.name in ("dctcp+", "dctcp+norand"):
            return DctcpPlusSender(
                sim,
                host,
                dst_node_id,
                flow_id,
                config=self.tcp_config,
                plus_config=self.plus_config,
                on_complete=on_complete,
            )
        if self.name == "tcp+":
            return RenoPlusSender(
                sim, host, dst_node_id, flow_id,
                config=self.tcp_config,
                plus_config=self.plus_config,
                on_complete=on_complete,
            )
        if self.name == "d2tcp":
            return D2tcpSender(
                sim, host, dst_node_id, flow_id, config=self.tcp_config,
                on_complete=on_complete, deadline_ns=deadline_ns,
            )
        if self.name == "d2tcp+":
            return D2tcpPlusSender(
                sim, host, dst_node_id, flow_id,
                config=self.tcp_config,
                plus_config=self.plus_config,
                on_complete=on_complete,
                deadline_ns=deadline_ns,
            )
        if self.name == "dctcp":
            return DctcpSender(
                sim, host, dst_node_id, flow_id, config=self.tcp_config,
                on_complete=on_complete,
            )
        return TcpSender(
            sim, host, dst_node_id, flow_id,
            config=self.tcp_config.with_overrides(ecn_enabled=False),
            on_complete=on_complete,
        )


def spec_for(
    name: str,
    tcp_overrides: Optional[dict] = None,
    plus_overrides: Optional[dict] = None,
) -> ProtocolSpec:
    """Build a :class:`ProtocolSpec` with optional config overrides."""
    tcp_config = TcpConfig(**(tcp_overrides or {}))
    plus_config = DctcpPlusConfig(**(plus_overrides or {}))
    return ProtocolSpec(name, tcp_config, plus_config)
