"""HTTP-style closed-loop request/response workload.

Each client runs the classic closed loop: issue a request, wait for the
full response, *think*, repeat.  Clients live on the network's
``aggregator`` host and fetch from the ``servers`` round-robin, so all
responses fan in through the topology's bottleneck — the application
shape behind the paper's Fig. 11/12 background-traffic discussion, as
opposed to the barrier-synchronized incast.

Response sizes and think times come from the empirical CDFs in
:mod:`repro.workloads.distributions` (drawn from per-client named
simulator streams, so a scenario replays identically anywhere).  Every
completed request is recorded as a
:class:`~repro.workloads.incast.RoundResult`, so the scenario layer's
goodput / p99-FCT / timeout-taxonomy path consumes this workload
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..net.pool import PacketPool
from ..sim.engine import Simulator
from ..sim.units import MS, SEC
from ..tcp.receiver import TcpReceiver
from .base import ClosedLoopWorkload
from .distributions import (
    BACKGROUND_FLOW_SIZE_CDF,
    BACKGROUND_INTERARRIVAL_CDF,
    SHORT_MESSAGE_SIZE_CDF,
    sample_flow_size_bytes,
)
from .ids import next_flow_id
from .incast import RoundResult, _RequestListener
from .protocols import ProtocolSpec

#: Named response-size distributions selectable from a spec (strings keep
#: :class:`~repro.exec.ScenarioSpec` overrides JSON-able and hashable).
RESPONSE_SIZE_CDFS = {
    "short-message": SHORT_MESSAGE_SIZE_CDF,
    "background": BACKGROUND_FLOW_SIZE_CDF,
}


@dataclass
class HttpConfig:
    """Parameters of one closed-loop HTTP run."""

    n_clients: int
    #: Requests each client issues before its loop ends.
    n_requests: int = 10
    #: Response size: a :data:`RESPONSE_SIZE_CDFS` name, or fixed bytes.
    response_size: Union[int, str] = "short-message"
    #: Think-time model between a response and the next request:
    #: ``"cdf"`` samples :data:`BACKGROUND_INTERARRIVAL_CDF` (scaled by
    #: ``think_scale``), ``"fixed"`` waits ``think_ns``, ``"none"`` reissues
    #: immediately (a pure back-to-back closed loop).
    think_mode: str = "cdf"
    think_scale: float = 1.0
    think_ns: int = 1 * MS
    request_bytes: int = 64
    #: Per-request give-up guard: a client whose request exceeds this stops
    #: issuing (the request is recorded as failed) instead of hanging.
    request_deadline_ns: int = 60 * SEC

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("need at least one client")
        if self.n_requests < 1:
            raise ValueError("need at least one request per client")
        if isinstance(self.response_size, str):
            if self.response_size not in RESPONSE_SIZE_CDFS:
                raise ValueError(
                    f"unknown response-size distribution {self.response_size!r}; "
                    f"choose from {sorted(RESPONSE_SIZE_CDFS)} or pass fixed bytes"
                )
        elif self.response_size < 1:
            raise ValueError("fixed response size must be >= 1 byte")
        if self.think_mode not in ("cdf", "fixed", "none"):
            raise ValueError(f"unknown think mode {self.think_mode!r}")
        if self.think_scale < 0:
            raise ValueError("think_scale must be >= 0")


class _HttpClient:
    """Per-client closed-loop state."""

    __slots__ = (
        "index",
        "server",
        "sender",
        "receiver",
        "ctrl_id",
        "next_bytes",
        "requests_done",
        "gave_up",
        "request_start_ns",
        "bytes_at_start",
        "timeouts_at_start",
        "deadline_event",
        "size_rng",
        "think_rng",
    )

    def __init__(self, index):
        self.index = index
        self.next_bytes = 0
        self.requests_done = 0
        self.gave_up = False
        self.request_start_ns = 0
        self.bytes_at_start = 0
        self.timeouts_at_start = 0
        self.deadline_event = None


class HttpWorkload(ClosedLoopWorkload):
    """Drives ``n_clients`` independent closed request/response loops."""

    def __init__(
        self,
        sim: Simulator,
        tree,
        spec: ProtocolSpec,
        config: HttpConfig,
    ):
        super().__init__(sim, tree, spec)
        self.config = config
        self.clients: List[_HttpClient] = []
        self._live = 0
        self._build_clients()

    # -- construction ----------------------------------------------------------
    def _build_clients(self) -> None:
        sim = self.sim
        tree = self.tree
        servers = tree.servers
        pool = PacketPool.of(sim)
        for i in range(self.config.n_clients):
            client = _HttpClient(i)
            client.server = servers[i % len(servers)]
            client.size_rng = sim.stream(f"http/size/{i}")
            client.think_rng = sim.stream(f"http/think/{i}")
            flow_id = next_flow_id()
            ctrl_id = next_flow_id()
            # The response flows server -> client host (fan-in through the
            # bottleneck); the request is a control packet the other way.
            client.receiver = TcpReceiver(
                sim,
                tree.aggregator,
                client.server.node_id,
                flow_id,
                expected_bytes=0,
                on_complete=self._make_on_response(client),
            )
            client.sender = self.spec.make_sender(
                sim, client.server, tree.aggregator.node_id, flow_id
            )
            self.senders.append(client.sender)
            self.receivers.append(client.receiver)
            listener = _RequestListener(self._make_responder(client), pool)
            client.server.register_flow(ctrl_id, listener)
            self._ctrl.append((client.server, ctrl_id))
            client.ctrl_id = ctrl_id
            self.clients.append(client)

    def _make_responder(self, client: _HttpClient):
        def _respond() -> None:
            client.sender.send(client.next_bytes)

        return _respond

    def _make_on_response(self, client: _HttpClient):
        def _on_response(_receiver) -> None:
            self._on_response(client)

        return _on_response

    # -- the closed loop -------------------------------------------------------
    def _begin(self) -> None:
        self._live = len(self.clients)
        for client in self.clients:
            self._issue(client)

    def _draw_response_bytes(self, client: _HttpClient) -> int:
        size = self.config.response_size
        if isinstance(size, str):
            return sample_flow_size_bytes(client.size_rng, RESPONSE_SIZE_CDFS[size])
        return size

    def _issue(self, client: _HttpClient) -> None:
        sim = self.sim
        cfg = self.config
        client.next_bytes = self._draw_response_bytes(client)
        client.request_start_ns = sim.now
        client.bytes_at_start = client.receiver.bytes_delivered
        client.timeouts_at_start = client.sender.stats.timeout_count
        client.receiver.expect(client.next_bytes)
        request = PacketPool.of(sim).alloc_control(
            client.ctrl_id,
            self.tree.aggregator.node_id,
            client.server.node_id,
            cfg.request_bytes,
            sim.next_packet_id(),
        )
        self.tree.aggregator.send(request)
        client.deadline_event = sim.schedule(
            cfg.request_deadline_ns, self._on_giveup, client
        )

    def _record(self, client: _HttpClient, completed: bool) -> None:
        sim = self.sim
        self.rounds.append(
            RoundResult(
                index=len(self.rounds),
                start_ns=client.request_start_ns,
                duration_ns=sim.now - client.request_start_ns,
                bytes_received=client.receiver.bytes_delivered - client.bytes_at_start,
                timeouts=client.sender.stats.timeout_count - client.timeouts_at_start,
                completed=completed,
            )
        )

    def _on_response(self, client: _HttpClient) -> None:
        if client.gave_up:
            return  # a response that limped in after the give-up guard
        sim = self.sim
        if client.deadline_event is not None:
            sim.cancel(client.deadline_event)
            client.deadline_event = None
        self._record(client, completed=True)
        client.requests_done += 1
        if client.requests_done >= self.config.n_requests:
            self._client_done()
            return
        think = self._think_ns(client)
        if think > 0:
            sim.schedule(think, self._issue, client)
        else:
            self._issue(client)

    def _on_giveup(self, client: _HttpClient) -> None:
        client.deadline_event = None
        client.gave_up = True
        self._record(client, completed=False)
        self._client_done()

    def _client_done(self) -> None:
        self._live -= 1
        if self._live == 0:
            self._finish()

    def _think_ns(self, client: _HttpClient) -> int:
        cfg = self.config
        if cfg.think_mode == "none":
            return 0
        if cfg.think_mode == "fixed":
            return cfg.think_ns
        draw = BACKGROUND_INTERARRIVAL_CDF.sample(client.think_rng)
        return max(0, int(draw * cfg.think_scale))
