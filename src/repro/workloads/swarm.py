"""Many-to-many swarm workload: every host both serves and fetches.

Each participating peer runs a closed fetch loop: pick another peer
(uniformly, from a per-peer named simulator stream), fetch one fixed-size
piece from it, then immediately pick again — so every host is
simultaneously a server for others and a client of others, and traffic
crosses the fabric in all directions at once.  On a fat-tree this
exercises many ECMP groups simultaneously; on a dumbbell it loads the
trunk both ways.

Transfers reuse persistent per-(source, fetcher) TCP pairs, created
lazily on first use — TCP state (cwnd, RTT estimate, DCTCP alpha) carries
across repeated fetches over the same pair, like the other closed-loop
workloads.  Every piece fetch is recorded as a
:class:`~repro.workloads.incast.RoundResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..net.pool import PacketPool
from ..sim.engine import Simulator
from ..sim.units import KB, SEC
from ..tcp.receiver import TcpReceiver
from .base import ClosedLoopWorkload
from .ids import next_flow_id
from .incast import RoundResult, _RequestListener
from .protocols import ProtocolSpec


@dataclass
class SwarmConfig:
    """Parameters of one swarm run."""

    #: Peers taking part (clamped to the topology's host count; a swarm
    #: needs at least two).
    n_peers: int
    #: Pieces each peer fetches before its loop ends.
    n_pieces: int = 8
    piece_bytes: int = 256 * KB
    request_bytes: int = 64
    #: Per-fetch give-up guard: a peer whose fetch exceeds this stops
    #: fetching (the piece is recorded as failed) instead of hanging.
    fetch_deadline_ns: int = 60 * SEC

    def __post_init__(self) -> None:
        if self.n_peers < 2:
            raise ValueError("a swarm needs at least two peers")
        if self.n_pieces < 1:
            raise ValueError("need at least one piece per peer")
        if self.piece_bytes < 1:
            raise ValueError("pieces must be at least one byte")


class _Pair:
    """Persistent one-directional transfer channel: source -> fetcher."""

    __slots__ = ("sender", "receiver", "ctrl_id", "src_host")

    def __init__(self, sender, receiver, ctrl_id, src_host):
        self.sender = sender
        self.receiver = receiver
        self.ctrl_id = ctrl_id
        self.src_host = src_host


class _Peer:
    """Per-peer fetch-loop state."""

    __slots__ = (
        "index",
        "host",
        "rng",
        "pieces_done",
        "gave_up",
        "fetch_start_ns",
        "bytes_at_start",
        "timeouts_at_start",
        "deadline_event",
        "pair",
    )

    def __init__(self, index, host, rng):
        self.index = index
        self.host = host
        self.rng = rng
        self.pieces_done = 0
        self.gave_up = False
        self.fetch_start_ns = 0
        self.bytes_at_start = 0
        self.timeouts_at_start = 0
        self.deadline_event = None
        self.pair = None


class SwarmWorkload(ClosedLoopWorkload):
    """Drives ``n_peers`` concurrent many-to-many fetch loops."""

    def __init__(
        self,
        sim: Simulator,
        tree,
        spec: ProtocolSpec,
        config: SwarmConfig,
    ):
        super().__init__(sim, tree, spec)
        self.config = config
        hosts = tree.all_hosts
        if len(hosts) < 2:
            raise ValueError("a swarm needs a topology with at least two hosts")
        n = min(config.n_peers, len(hosts))
        self.peers: List[_Peer] = [
            _Peer(i, hosts[i], sim.stream(f"swarm/peer/{i}")) for i in range(n)
        ]
        # (source index, fetcher index) -> persistent transfer pair,
        # created lazily the first time that direction is used.
        self._pairs: Dict[Tuple[int, int], _Pair] = {}
        self._live = 0

    # -- pair management -------------------------------------------------------
    def _pair_for(self, src: _Peer, fetcher: _Peer) -> _Pair:
        key = (src.index, fetcher.index)
        pair = self._pairs.get(key)
        if pair is not None:
            return pair
        sim = self.sim
        flow_id = next_flow_id()
        ctrl_id = next_flow_id()
        receiver = TcpReceiver(
            sim,
            fetcher.host,
            src.host.node_id,
            flow_id,
            expected_bytes=0,
            on_complete=self._make_on_piece(fetcher),
        )
        sender = self.spec.make_sender(sim, src.host, fetcher.host.node_id, flow_id)
        piece = self.config.piece_bytes

        def _serve() -> None:
            sender.send(piece)

        listener = _RequestListener(_serve, PacketPool.of(sim))
        src.host.register_flow(ctrl_id, listener)
        self._ctrl.append((src.host, ctrl_id))
        self.senders.append(sender)
        self.receivers.append(receiver)
        pair = _Pair(sender, receiver, ctrl_id, src.host)
        self._pairs[key] = pair
        return pair

    def _make_on_piece(self, fetcher: _Peer):
        def _on_piece(_receiver) -> None:
            self._on_piece(fetcher)

        return _on_piece

    # -- the fetch loop --------------------------------------------------------
    def _begin(self) -> None:
        self._live = len(self.peers)
        for peer in self.peers:
            self._fetch(peer)

    def _pick_source(self, fetcher: _Peer) -> _Peer:
        n = len(self.peers)
        other = fetcher.rng.randrange(n - 1)
        if other >= fetcher.index:
            other += 1
        return self.peers[other]

    def _fetch(self, fetcher: _Peer) -> None:
        sim = self.sim
        cfg = self.config
        src = self._pick_source(fetcher)
        pair = self._pair_for(src, fetcher)
        fetcher.pair = pair
        fetcher.fetch_start_ns = sim.now
        fetcher.bytes_at_start = pair.receiver.bytes_delivered
        fetcher.timeouts_at_start = pair.sender.stats.timeout_count
        pair.receiver.expect(cfg.piece_bytes)
        request = PacketPool.of(sim).alloc_control(
            pair.ctrl_id,
            fetcher.host.node_id,
            src.host.node_id,
            cfg.request_bytes,
            sim.next_packet_id(),
        )
        fetcher.host.send(request)
        fetcher.deadline_event = sim.schedule(
            cfg.fetch_deadline_ns, self._on_giveup, fetcher
        )

    def _record(self, fetcher: _Peer, completed: bool) -> None:
        pair = fetcher.pair
        self.rounds.append(
            RoundResult(
                index=len(self.rounds),
                start_ns=fetcher.fetch_start_ns,
                duration_ns=self.sim.now - fetcher.fetch_start_ns,
                bytes_received=pair.receiver.bytes_delivered - fetcher.bytes_at_start,
                timeouts=pair.sender.stats.timeout_count - fetcher.timeouts_at_start,
                completed=completed,
            )
        )

    def _on_piece(self, fetcher: _Peer) -> None:
        if fetcher.gave_up:
            return  # a piece that limped in after the give-up guard
        sim = self.sim
        if fetcher.deadline_event is not None:
            sim.cancel(fetcher.deadline_event)
            fetcher.deadline_event = None
        self._record(fetcher, completed=True)
        fetcher.pieces_done += 1
        if fetcher.pieces_done >= self.config.n_pieces:
            self._peer_done()
            return
        self._fetch(fetcher)

    def _on_giveup(self, fetcher: _Peer) -> None:
        fetcher.deadline_event = None
        fetcher.gave_up = True
        self._record(fetcher, completed=False)
        self._peer_done()

    def _peer_done(self) -> None:
        self._live -= 1
        if self._live == 0:
            self._finish()
