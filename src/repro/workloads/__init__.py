"""Traffic generators: incast rounds, long flows, benchmark mix, protocols."""

from .background import BackgroundConfig, BackgroundTraffic, ThroughputSample
from .benchmark import BenchmarkConfig, BenchmarkWorkload, FlowRecord
from .distributions import (
    BACKGROUND_FLOW_SIZE_CDF,
    BACKGROUND_INTERARRIVAL_CDF,
    SHORT_MESSAGE_SIZE_CDF,
    EmpiricalCDF,
    exponential_interarrival_ns,
    sample_flow_size_bytes,
)
from .base import ClosedLoopWorkload
from .http import RESPONSE_SIZE_CDFS, HttpConfig, HttpWorkload
from .ids import next_flow_id
from .incast import IncastConfig, IncastWorkload, RoundResult
from .protocols import PROTOCOLS, ProtocolSpec, spec_for
from .swarm import SwarmConfig, SwarmWorkload

__all__ = [
    "IncastConfig",
    "IncastWorkload",
    "RoundResult",
    "ClosedLoopWorkload",
    "HttpConfig",
    "HttpWorkload",
    "RESPONSE_SIZE_CDFS",
    "SwarmConfig",
    "SwarmWorkload",
    "BackgroundConfig",
    "BackgroundTraffic",
    "ThroughputSample",
    "BenchmarkConfig",
    "BenchmarkWorkload",
    "FlowRecord",
    "EmpiricalCDF",
    "BACKGROUND_FLOW_SIZE_CDF",
    "BACKGROUND_INTERARRIVAL_CDF",
    "SHORT_MESSAGE_SIZE_CDF",
    "exponential_interarrival_ns",
    "sample_flow_size_bytes",
    "next_flow_id",
    "PROTOCOLS",
    "ProtocolSpec",
    "spec_for",
]
