"""Shared skeleton for closed-loop application workloads.

:class:`ClosedLoopWorkload` factors the lifecycle the incast benchmark
established — ``start()`` / ``run_to_completion()`` / ``close()``, a
``rounds`` list of :class:`~repro.workloads.incast.RoundResult`, lifetime
``flow_stats`` and the goodput/FCT/timeout aggregates — so the HTTP and
swarm workloads plug into :func:`repro.exec.run_scenario` exactly like
:class:`~repro.workloads.incast.IncastWorkload` does.

(:class:`IncastWorkload` itself predates this base and deliberately does
not inherit from it: its event sequence is pinned byte-for-byte by the
golden digests, so it stays untouched.)
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..net.host import Host
from ..tcp.receiver import TcpReceiver
from ..tcp.sender import TcpSender
from .incast import RoundResult
from .protocols import ProtocolSpec


class ClosedLoopWorkload:
    """Base for workloads that issue requests, wait, then issue again.

    Subclasses populate ``senders`` / ``receivers`` / ``_ctrl`` during
    construction, implement :meth:`_begin` to kick off the closed loops,
    and call :meth:`_finish` once every loop has drained.
    """

    def __init__(self, sim, tree, spec: ProtocolSpec):
        self.sim = sim
        self.tree = tree
        self.spec = spec
        self.rounds: List[RoundResult] = []
        self.finished = False
        self.senders: List[TcpSender] = []
        self.receivers: List[TcpReceiver] = []
        self._ctrl: List[Tuple[Host, int]] = []
        self._started = False
        self._stop_on_finish = False
        # Seed the RTT estimator as a persistent connection would be.
        if spec.tcp_config.seed_rtt_ns is None:
            spec.tcp_config = spec.tcp_config.with_overrides(
                seed_rtt_ns=tree.baseline_rtt_ns()
            )

    @property
    def flow_stats(self) -> List:
        """Per-flow lifetime statistics, in flow-creation order."""
        return [s.stats for s in self.senders]

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first requests at the current simulated time."""
        if self._started:
            raise RuntimeError("workload already started")
        self._started = True
        self.sim.schedule(0, self._begin)

    def _begin(self) -> None:
        raise NotImplementedError

    def run_to_completion(self, max_events: Optional[int] = None) -> None:
        """Start (if needed) and pump the simulator until every loop ends."""
        if not self._started:
            self.start()
        if not self.finished:
            self._stop_on_finish = True
            try:
                self.sim.run(max_events=max_events)
            finally:
                self._stop_on_finish = False

    def _finish(self) -> None:
        """Mark the workload complete; stops the pump when we own it."""
        self.finished = True
        if self._stop_on_finish:
            self.sim.request_stop()

    def close(self) -> None:
        """Tear down all endpoints (end of the experiment)."""
        for sender in self.senders:
            sender.close()
        for receiver in self.receivers:
            receiver.close()
        for host, ctrl_id in self._ctrl:
            host.unregister_flow(ctrl_id)
        self._ctrl = []

    # -- aggregate views -------------------------------------------------------
    @property
    def mean_goodput_bps(self) -> float:
        """Average per-request goodput across completed requests."""
        if not self.rounds:
            return 0.0
        return sum(r.goodput_bps for r in self.rounds) / len(self.rounds)

    @property
    def mean_fct_ns(self) -> float:
        """Average request completion time."""
        if not self.rounds:
            return 0.0
        return sum(r.duration_ns for r in self.rounds) / len(self.rounds)

    @property
    def total_timeouts(self) -> int:
        return sum(r.timeouts for r in self.rounds)

    @property
    def total_reordered_packets(self) -> int:
        """Receiver-observed reordering across all flows (multipath spray)."""
        return sum(r.reordered_packets for r in self.receivers)
