"""Global flow-id allocation.

Flow ids must be unique per host demux table; a process-wide counter keeps
them unique across workloads, rounds and background traffic without any
coordination.
"""

from __future__ import annotations

from itertools import count

_flow_ids = count(1)


def next_flow_id() -> int:
    """Allocate a fresh, process-unique flow id."""
    return next(_flow_ids)
