"""The incast benchmark (paper Section VI.B, after Vasudevan et al.).

One aggregator requests ``total_bytes / N`` from each of ``N`` worker
flows; workers respond immediately and simultaneously; the aggregator
waits for **all** responses (barrier) and then issues the next request.
Flows are spread round-robin across the servers (the paper's
multithreaded senders: each server carries several concurrent flows).

Connections are **persistent across rounds**, as in the reference
benchmark (github.com/amarp/incast): the same TCP state — cwnd, ssthresh,
RTT estimate, DCTCP alpha, DCTCP+ slow_time — carries over from round to
round.  This matters: a fresh connection would re-enter slow start every
round and overshoot, which is not what the testbed measures.

Requests are modelled as real 64-byte control packets sent back-to-back
through the aggregator's NIC, so workers start within a few microseconds
of each other — the synchronization that produces the fan-in burst.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..net.host import Host
from ..net.pool import PacketPool
from ..net.topology import TwoTierTree
from ..sim.engine import Simulator
from ..sim.units import MB, SEC, bits_per_second
from ..tcp.receiver import TcpReceiver
from ..tcp.sender import TcpSender
from .ids import next_flow_id
from .protocols import ProtocolSpec


@dataclass
class IncastConfig:
    """Parameters of one incast run."""

    n_flows: int
    #: Total bytes per round, split evenly across flows (paper: 1 MB).
    total_bytes: int = 1 * MB
    #: Overrides the even split: exact bytes requested from *each* flow
    #: (Fig. 14 uses 4 MB per flow).
    bytes_per_flow: Optional[int] = None
    n_rounds: int = 10
    request_bytes: int = 64
    #: Interval between consecutive request issues at the aggregator.  The
    #: reference benchmark's aggregator is a userspace loop over N sockets
    #: ("multiple threads ... in a serially round-robin way"), so requests
    #: leave one send() syscall apart, not back-to-back on the wire.  ~30 us
    #: per request matches syscall + thread wakeup cost on the paper's
    #: 2009-era hardware (Celeron dual-core, CentOS 5.5).
    request_spacing_ns: int = 30_000
    #: Optional worker-side start jitter (models app/OS scheduling noise;
    #: 0 keeps workers perfectly synchronized).
    start_jitter_ns: int = 0
    #: Per-round wall-clock guard; a round that exceeds this is recorded as
    #: failed instead of hanging the simulation.
    round_deadline_ns: int = 60 * SEC
    #: Optional per-flow completion deadline, relative to the round start.
    #: Deadline-aware senders (d2tcp / d2tcp+) modulate their backoff with
    #: it; every protocol gets its misses counted in the round results.
    flow_deadline_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError("need at least one flow")
        if self.bytes_per_flow is None and self.total_bytes < self.n_flows:
            raise ValueError("total_bytes must allow >= 1 byte per flow")
        if self.n_rounds < 1:
            raise ValueError("need at least one round")

    @property
    def sru_bytes(self) -> int:
        """Server request unit: bytes each worker sends per round."""
        if self.bytes_per_flow is not None:
            return self.bytes_per_flow
        return self.total_bytes // self.n_flows

    @property
    def round_bytes(self) -> int:
        return self.sru_bytes * self.n_flows


@dataclass
class RoundResult:
    """Outcome of one request/response round."""

    index: int
    start_ns: int
    duration_ns: int
    bytes_received: int
    timeouts: int
    completed: bool
    #: flows that finished after the configured flow deadline (0 when no
    #: deadline is configured).
    missed_deadlines: int = 0

    @property
    def goodput_bps(self) -> float:
        return bits_per_second(self.bytes_received, self.duration_ns)


class _RequestListener:
    """Worker-side endpoint that starts the response on request arrival."""

    __slots__ = ("callback", "_pool_free")

    def __init__(self, callback: Callable[[], None], pool: PacketPool):
        self.callback = callback
        self._pool_free = pool.free

    def on_packet(self, h: int) -> None:
        self._pool_free(h)
        self.callback()


class IncastWorkload:
    """Drives ``n_rounds`` of the incast pattern over persistent flows."""

    def __init__(
        self,
        sim: Simulator,
        tree: TwoTierTree,
        spec: ProtocolSpec,
        config: IncastConfig,
        on_round_end: Optional[Callable[[RoundResult], None]] = None,
    ):
        self.sim = sim
        self.tree = tree
        self.spec = spec
        self.config = config
        self.on_round_end = on_round_end
        self.rounds: List[RoundResult] = []
        self.finished = False
        self._jitter_rng = sim.stream("incast/jitter")
        # Seed the RTT estimator as a persistent connection would be (the
        # connection's handshake and first rounds have measured the path).
        if spec.tcp_config.seed_rtt_ns is None:
            spec.tcp_config = spec.tcp_config.with_overrides(seed_rtt_ns=tree.baseline_rtt_ns())
        self._round_index = 0
        self.senders: List[TcpSender] = []
        self.receivers: List[TcpReceiver] = []
        self._ctrl: List[Tuple[Host, int]] = []
        self._pending = 0
        self._round_start = 0
        self._missed_this_round = 0
        self._deadline_event = None
        self._bytes_at_round_start = 0
        self._timeouts_at_round_start = 0
        self._started = False
        self._stop_on_finish = False
        self._build_flows()

    @property
    def flow_stats(self) -> List:
        """Per-flow lifetime statistics (span all rounds, like the paper's
        per-flow kernel traces)."""
        return [s.stats for s in self.senders]

    # -- construction ----------------------------------------------------------
    def _build_flows(self) -> None:
        cfg = self.config
        sim = self.sim
        tree = self.tree
        for i in range(cfg.n_flows):
            server = tree.servers[i % len(tree.servers)]
            flow_id = next_flow_id()
            ctrl_id = next_flow_id()

            receiver = TcpReceiver(
                sim,
                tree.aggregator,
                server.node_id,
                flow_id,
                expected_bytes=0,
                on_complete=self._on_flow_complete,
            )
            sender = self.spec.make_sender(sim, server, tree.aggregator.node_id, flow_id)
            self.senders.append(sender)
            self.receivers.append(receiver)

            listener = _RequestListener(self._make_starter(sender), PacketPool.of(sim))
            server.register_flow(ctrl_id, listener)
            self._ctrl.append((server, ctrl_id))

    def _make_starter(self, sender: TcpSender) -> Callable[[], None]:
        jitter = self.config.start_jitter_ns
        sru = self.config.sru_bytes

        def _start() -> None:
            if jitter > 0:
                self.sim.schedule(self._jitter_rng.randrange(jitter + 1), sender.send, sru)
            else:
                sender.send(sru)

        return _start

    # -- public ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first round at the current simulated time."""
        if self._started:
            raise RuntimeError("workload already started")
        self._started = True
        self.sim.schedule(0, self._begin_round)

    def run_to_completion(self, max_events: Optional[int] = None) -> None:
        """Start (if needed) and pump the simulator until all rounds end.

        Only runs pumped here stop at workload completion; a caller driving
        ``sim.run(until=...)`` itself (e.g. to keep a queue sampler or
        background traffic going past the last round) runs to its own bound.
        """
        if not self._started:
            self.start()
        if not self.finished:
            self._stop_on_finish = True
            try:
                self.sim.run(max_events=max_events)
            finally:
                self._stop_on_finish = False

    def close(self) -> None:
        """Tear down all endpoints (end of the experiment)."""
        for sender in self.senders:
            sender.close()
        for receiver in self.receivers:
            receiver.close()
        for server, ctrl_id in self._ctrl:
            server.unregister_flow(ctrl_id)
        self._ctrl = []

    # -- round lifecycle -----------------------------------------------------------
    def _begin_round(self) -> None:
        cfg = self.config
        sim = self.sim
        tree = self.tree
        self._round_start = sim.now
        self._pending = cfg.n_flows
        self._missed_this_round = 0
        self._bytes_at_round_start = sum(r.bytes_delivered for r in self.receivers)
        self._timeouts_at_round_start = sum(s.stats.timeout_count for s in self.senders)
        if cfg.flow_deadline_ns is not None:
            absolute = sim.now + cfg.flow_deadline_ns
            for sender in self.senders:
                set_deadline = getattr(sender, "set_deadline", None)
                if set_deadline is not None:
                    set_deadline(absolute)
        sru = cfg.sru_bytes
        for receiver in self.receivers:
            receiver.expect(sru)
        pool = PacketPool.of(sim)
        aggregator_id = tree.aggregator.node_id
        for i, (server, ctrl_id) in enumerate(self._ctrl):
            request = pool.alloc_control(
                ctrl_id,
                aggregator_id,
                server.node_id,
                cfg.request_bytes,
                sim.next_packet_id(),
            )
            if cfg.request_spacing_ns > 0:
                sim.schedule(i * cfg.request_spacing_ns, tree.aggregator.send, request)
            else:
                tree.aggregator.send(request)
        self._deadline_event = sim.schedule(cfg.round_deadline_ns, self._on_deadline)

    def _on_flow_complete(self, receiver: TcpReceiver) -> None:
        self._pending -= 1
        deadline = self.config.flow_deadline_ns
        if deadline is not None and self.sim.now > self._round_start + deadline:
            self._missed_this_round += 1
        if self._pending == 0:
            self._end_round(completed=True)

    def _on_deadline(self) -> None:
        self._deadline_event = None
        self._end_round(completed=False)

    def _end_round(self, completed: bool) -> None:
        sim = self.sim
        if self._deadline_event is not None:
            sim.cancel(self._deadline_event)
            self._deadline_event = None
        bytes_received = (
            sum(r.bytes_delivered for r in self.receivers) - self._bytes_at_round_start
        )
        timeouts = (
            sum(s.stats.timeout_count for s in self.senders)
            - self._timeouts_at_round_start
        )
        result = RoundResult(
            index=self._round_index,
            start_ns=self._round_start,
            duration_ns=sim.now - self._round_start,
            bytes_received=bytes_received,
            timeouts=timeouts,
            completed=completed,
            missed_deadlines=self._missed_this_round,
        )
        self.rounds.append(result)
        if self.on_round_end is not None:
            self.on_round_end(result)

        self._round_index += 1
        if self._round_index >= self.config.n_rounds:
            self.finished = True
            # Stop the pump via the engine flag rather than a per-event
            # stop_when predicate — but only when run_to_completion is the
            # pump, so a caller's own sim.run(until=...) keeps its scope.
            if self._stop_on_finish:
                sim.request_stop()
        else:
            sim.schedule(0, self._begin_round)

    # -- aggregate views -------------------------------------------------------------
    @property
    def mean_goodput_bps(self) -> float:
        """Average application goodput across rounds (paper Fig. 1/7/8/11)."""
        if not self.rounds:
            return 0.0
        return sum(r.goodput_bps for r in self.rounds) / len(self.rounds)

    @property
    def mean_fct_ns(self) -> float:
        """Average round completion time (the paper's FCT, Fig. 7/12)."""
        if not self.rounds:
            return 0.0
        return sum(r.duration_ns for r in self.rounds) / len(self.rounds)

    @property
    def total_timeouts(self) -> int:
        return sum(r.timeouts for r in self.rounds)

    @property
    def total_missed_deadlines(self) -> int:
        return sum(r.missed_deadlines for r in self.rounds)

    @property
    def missed_deadline_fraction(self) -> float:
        """Share of (flow, round) completions that blew their deadline."""
        total = len(self.rounds) * self.config.n_flows
        if total == 0:
            return 0.0
        return self.total_missed_deadlines / total
