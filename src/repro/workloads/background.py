"""Persistent background (long) flows — the Fig. 10 scenario.

Two servers stream continuously to the aggregator through the same
bottleneck port as the incast traffic, consuming shared buffer.  The
paper reports each long flow averaging ~400 Mbps under DCTCP+ (fair
halves of the bottleneck when the incast traffic is quiet) and uses the
pair to show performance isolation between short and long flows.

A long flow is modelled as a sender whose application keeps the socket
buffer non-empty: whenever the unsent backlog drops below one chunk, the
"application" writes another chunk.  Throughput is recorded per
``report_interval`` (the paper samples per GB transferred).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..net.topology import TwoTierTree
from ..sim.engine import Simulator
from ..sim.units import MB, bits_per_second
from ..tcp.receiver import TcpReceiver
from ..tcp.sender import TcpSender
from .ids import next_flow_id
from .protocols import ProtocolSpec


@dataclass
class BackgroundConfig:
    """Long-flow scenario parameters."""

    n_flows: int = 2
    #: bytes the "application" writes per send() call.
    chunk_bytes: int = 1 * MB
    #: refill when fewer than this many bytes remain unsent.
    low_watermark_bytes: int = 256 * 1024
    #: record a throughput sample every this many delivered bytes
    #: (the paper samples the long flows' average every 1 GB).
    report_interval_bytes: int = 64 * MB

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError("need at least one background flow")
        if self.chunk_bytes <= 0 or self.low_watermark_bytes < 0:
            raise ValueError("invalid chunk/watermark sizes")


@dataclass
class ThroughputSample:
    """One report-interval observation for a long flow."""

    flow_index: int
    start_ns: int
    end_ns: int
    bytes: int

    @property
    def throughput_bps(self) -> float:
        return bits_per_second(self.bytes, self.end_ns - self.start_ns)


class BackgroundTraffic:
    """Keeps ``n_flows`` long flows saturated for the lifetime of a run."""

    def __init__(
        self,
        sim: Simulator,
        tree: TwoTierTree,
        spec: ProtocolSpec,
        config: Optional[BackgroundConfig] = None,
        #: which servers source the long flows (defaults to the last ones,
        #: keeping them distinct from the first incast workers).
        server_indices: Optional[List[int]] = None,
    ):
        self.sim = sim
        self.tree = tree
        self.spec = spec
        self.config = config or BackgroundConfig()
        if spec.tcp_config.seed_rtt_ns is None:
            spec.tcp_config = spec.tcp_config.with_overrides(seed_rtt_ns=tree.baseline_rtt_ns())
        if server_indices is None:
            n = self.config.n_flows
            server_indices = [len(tree.servers) - 1 - i for i in range(n)]
        self.server_indices = server_indices
        self.senders: List[TcpSender] = []
        self.receivers: List[TcpReceiver] = []
        self.samples: List[ThroughputSample] = []
        self._interval_start_ns: List[int] = []
        self._interval_bytes: List[int] = []
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("background traffic already started")
        self._started = True
        cfg = self.config
        for idx, server_idx in enumerate(self.server_indices):
            server = self.tree.servers[server_idx % len(self.tree.servers)]
            flow_id = next_flow_id()
            receiver = TcpReceiver(
                self.sim,
                self.tree.aggregator,
                server.node_id,
                flow_id,
                expected_bytes=None,
                on_data=self._make_on_data(idx),
            )
            sender = self.spec.make_sender(self.sim, server, self.tree.aggregator.node_id, flow_id)
            self.senders.append(sender)
            self.receivers.append(receiver)
            self._interval_start_ns.append(self.sim.now)
            self._interval_bytes.append(0)
            sender.send(cfg.chunk_bytes)
            self._schedule_refill(idx)

    def stop(self) -> None:
        for sender in self.senders:
            sender.close()
        for receiver in self.receivers:
            receiver.close()

    # -- internals ------------------------------------------------------------
    def _schedule_refill(self, idx: int) -> None:
        # Poll the socket backlog at a coarse tick; a real application
        # would block in send() and be woken by the socket, but a 1 ms poll
        # never lets a 1 Gbps path drain a 256 KB watermark unnoticed.
        self.sim.schedule(1_000_000, self._refill, idx)

    def _refill(self, idx: int) -> None:
        sender = self.senders[idx]
        if sender.closed:
            return
        cfg = self.config
        unsent = sender.total_bytes - sender.snd_una
        if unsent < cfg.low_watermark_bytes + cfg.chunk_bytes:
            sender.send(cfg.chunk_bytes)
        self._schedule_refill(idx)

    def _make_on_data(self, idx: int):
        cfg = self.config

        def _on_data(nbytes: int) -> None:
            self._interval_bytes[idx] += nbytes
            if self._interval_bytes[idx] >= cfg.report_interval_bytes:
                now = self.sim.now
                self.samples.append(
                    ThroughputSample(
                        flow_index=idx,
                        start_ns=self._interval_start_ns[idx],
                        end_ns=now,
                        bytes=self._interval_bytes[idx],
                    )
                )
                self._interval_start_ns[idx] = now
                self._interval_bytes[idx] = 0

        return _on_data

    # -- views ------------------------------------------------------------------
    def mean_throughput_bps(self, flow_index: Optional[int] = None) -> float:
        """Average long-flow throughput (per flow, or across all)."""
        samples = [s for s in self.samples if flow_index is None or s.flow_index == flow_index]
        if not samples:
            # Fall back to lifetime average from receiver byte counts.
            total = 0.0
            count = 0
            for i, receiver in enumerate(self.receivers):
                if flow_index is not None and i != flow_index:
                    continue
                elapsed = self.sim.now - (
                    self.senders[i].stats.start_time_ns
                    if self.senders[i].stats.start_time_ns >= 0
                    else self.sim.now
                )
                if elapsed > 0:
                    total += bits_per_second(receiver.bytes_delivered, elapsed)
                    count += 1
            return total / count if count else 0.0
        return sum(s.throughput_bps for s in samples) / len(samples)

    @property
    def total_delivered_bytes(self) -> int:
        return sum(r.bytes_delivered for r in self.receivers)
