"""Traffic distributions for the production-cluster benchmark.

The paper generates its Section VI.D benchmark "based on statistics from
the production cluster [1]" — the flow-size and inter-arrival
distributions published in the DCTCP paper (Alizadeh et al., SIGCOMM'10,
Fig. 4).  The exact CDF tables were never released; the point sets below
are read off the published figures and preserve the features the
benchmark depends on: most background flows are small (the median is well
under 100 KB) while most *bytes* come from the 1-50 MB tail, and query
responses are a fixed 2 KB.

Each distribution is an :class:`EmpiricalCDF` sampled by inverse-transform
with log-linear interpolation between knots (flow sizes span five orders
of magnitude, so interpolating in log-space avoids biasing mass toward
the large end of each segment).
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from typing import Sequence, Tuple

from ..sim.units import KB, MB, MS


class EmpiricalCDF:
    """Inverse-transform sampler over a piecewise CDF.

    Parameters
    ----------
    points:
        ``(value, cumulative_probability)`` knots, strictly increasing in
        both coordinates, with the last probability equal to 1.0.
    log_interp:
        Interpolate values geometrically between knots (appropriate for
        heavy-tailed sizes); linear otherwise.
    """

    def __init__(self, points: Sequence[Tuple[float, float]], log_interp: bool = True):
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        values = [p[0] for p in points]
        probs = [p[1] for p in points]
        if any(b <= a for a, b in zip(values, values[1:])):
            raise ValueError("CDF values must be strictly increasing")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError("CDF probabilities must be non-decreasing")
        if not math.isclose(probs[-1], 1.0):
            raise ValueError(f"last CDF probability must be 1.0, got {probs[-1]}")
        if probs[0] < 0.0:
            raise ValueError("probabilities must be non-negative")
        if log_interp and values[0] <= 0:
            raise ValueError("log interpolation requires positive values")
        self._values = values
        self._probs = probs
        self._log = log_interp

    def sample(self, rng: random.Random) -> float:
        """Draw one value by inverse transform."""
        u = rng.random()
        return self.quantile(u)

    def quantile(self, u: float) -> float:
        """Value at cumulative probability ``u``."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"u must be in [0, 1], got {u}")
        probs, values = self._probs, self._values
        if u <= probs[0]:
            return values[0]
        if u >= probs[-1]:
            return values[-1]
        i = bisect_right(probs, u)
        p0, p1 = probs[i - 1], probs[i]
        v0, v1 = values[i - 1], values[i]
        frac = 0.0 if p1 == p0 else (u - p0) / (p1 - p0)
        if self._log:
            return math.exp(math.log(v0) + frac * (math.log(v1) - math.log(v0)))
        return v0 + frac * (v1 - v0)

    def mean_estimate(self, n: int = 20001) -> float:
        """Numerical mean via quantile integration (documentation aid)."""
        total = 0.0
        for k in range(1, n + 1):
            total += self.quantile((k - 0.5) / n)
        return total / n


#: Background flow sizes (bytes), after DCTCP-paper Fig. 4(b): median a few
#: tens of KB, ~80th percentile around 1 MB, a 1-50 MB byte-dominant tail.
BACKGROUND_FLOW_SIZE_CDF = EmpiricalCDF(
    [
        (1 * KB, 0.00),
        (5 * KB, 0.20),
        (20 * KB, 0.40),
        (50 * KB, 0.53),
        (100 * KB, 0.60),
        (300 * KB, 0.68),
        (1 * MB, 0.78),
        (3 * MB, 0.87),
        (10 * MB, 0.95),
        (30 * MB, 0.99),
        (50 * MB, 1.00),
    ]
)

#: Short-message sizes (bytes): the 50 KB - 1 MB "message" band the DCTCP
#: paper distinguishes from queries and large background transfers.
SHORT_MESSAGE_SIZE_CDF = EmpiricalCDF(
    [
        (50 * KB, 0.00),
        (100 * KB, 0.35),
        (200 * KB, 0.60),
        (500 * KB, 0.85),
        (1 * MB, 1.00),
    ]
)

#: Background-flow inter-arrival times (ns), after DCTCP-paper Fig. 4(a):
#: bursty arrivals with a ~10 ms median and a long tail.
BACKGROUND_INTERARRIVAL_CDF = EmpiricalCDF(
    [
        (1 * MS, 0.00),
        (3 * MS, 0.20),
        (10 * MS, 0.50),
        (30 * MS, 0.75),
        (100 * MS, 0.95),
        (300 * MS, 1.00),
    ]
)


def exponential_interarrival_ns(rng: random.Random, mean_ns: float) -> int:
    """Poisson-process gap (the paper's query arrivals)."""
    if mean_ns <= 0:
        raise ValueError(f"mean inter-arrival must be positive, got {mean_ns}")
    return max(1, int(rng.expovariate(1.0 / mean_ns)))


def sample_flow_size_bytes(rng: random.Random, cdf: EmpiricalCDF) -> int:
    """Integer byte count from a size CDF (at least 1)."""
    return max(1, int(cdf.sample(rng)))
